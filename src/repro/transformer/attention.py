"""Multi-head self-attention.

Implements the standard BERT attention block plus an optional, simplified
DeBERTa-style *disentangled* variant in which relative-position projections
contribute additional content-to-position and position-to-content score
terms.  The disentangled path exists so that the DeBERTa-XL configuration
exercises extra GEMMs, matching the paper's model list; the simplification
(shared relative-position embedding, no bucketing) keeps the value
distributions and compute shapes representative without reproducing the
full DeBERTa recipe.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.transformer.functional import softmax
from repro.transformer.layers import ActivationTransform, Linear, Module


class MultiHeadSelfAttention(Module):
    """Multi-head self-attention with Q/K/V/output projections."""

    def __init__(
        self,
        query: Linear,
        key: Linear,
        value: Linear,
        output: Linear,
        num_heads: int,
        relative_key: Optional[Linear] = None,
        relative_query: Optional[Linear] = None,
        relative_embedding: Optional[np.ndarray] = None,
    ) -> None:
        hidden = query.out_features
        if hidden % num_heads != 0:
            raise ValueError("hidden size must be divisible by num_heads")
        self.query = query
        self.key = key
        self.value = value
        self.output = output
        self.num_heads = num_heads
        self.head_dim = hidden // num_heads
        self.relative_key = relative_key
        self.relative_query = relative_query
        self.relative_embedding = relative_embedding

    @property
    def disentangled(self) -> bool:
        """Whether the DeBERTa-style relative-position terms are active."""
        return (
            self.relative_key is not None
            and self.relative_query is not None
            and self.relative_embedding is not None
        )

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        """(batch, seq, hidden) -> (batch, heads, seq, head_dim)."""
        batch, seq, _ = x.shape
        x = x.reshape(batch, seq, self.num_heads, self.head_dim)
        return x.transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        """(batch, heads, seq, head_dim) -> (batch, seq, hidden)."""
        batch, heads, seq, head_dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * head_dim)

    def _relative_scores(self, hidden_states: np.ndarray, seq: int) -> np.ndarray:
        """Simplified disentangled-attention score contribution."""
        # Relative position embedding for distances clipped to the table size.
        table = self.relative_embedding
        max_dist = table.shape[0] // 2
        positions = np.arange(seq)
        distance = np.clip(positions[None, :] - positions[:, None], -max_dist, max_dist - 1)
        rel = table[distance + max_dist]  # (seq, seq, hidden)

        q = self._split_heads(self.relative_query(hidden_states))
        k = self._split_heads(self.relative_key(hidden_states))
        rel_heads = rel.reshape(seq, seq, self.num_heads, self.head_dim)

        # content-to-position: q_i . r_ij ; position-to-content: k_j . r_ij
        c2p = np.einsum("bhid,ijhd->bhij", q, rel_heads)
        p2c = np.einsum("bhjd,ijhd->bhij", k, rel_heads)
        return (c2p + p2c) / np.sqrt(3.0 * self.head_dim)

    def __call__(
        self,
        hidden_states: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        hook: Optional[ActivationTransform] = None,
        prefix: str = "attention",
    ) -> np.ndarray:
        """Run self-attention over ``hidden_states``.

        Args:
            hidden_states: Input of shape ``(batch, seq, hidden)``.
            attention_mask: Optional ``(batch, seq)`` mask of 1s (keep) and
                0s (pad).
            hook: Optional activation transform/recording callback invoked on
                every named intermediate activation.
            prefix: Name prefix used for activation hooks.
        """
        batch, seq, _ = hidden_states.shape

        q_proj = self.query(hidden_states)
        k_proj = self.key(hidden_states)
        v_proj = self.value(hidden_states)
        if hook is not None:
            q_proj = hook(f"{prefix}.query", q_proj)
            k_proj = hook(f"{prefix}.key", k_proj)
            v_proj = hook(f"{prefix}.value", v_proj)

        q = self._split_heads(q_proj)
        k = self._split_heads(k_proj)
        v = self._split_heads(v_proj)

        scores = q @ k.transpose(0, 1, 3, 2) / np.sqrt(self.head_dim)
        if self.disentangled:
            scores = scores + self._relative_scores(hidden_states, seq)
        if attention_mask is not None:
            mask = np.asarray(attention_mask, dtype=np.float32)[:, None, None, :]
            scores = scores + (1.0 - mask) * -1e9

        probs = softmax(scores, axis=-1)
        if hook is not None:
            probs = hook(f"{prefix}.probs", probs)

        context = self._merge_heads(probs @ v)
        if hook is not None:
            context = hook(f"{prefix}.context", context)

        out = self.output(context)
        if hook is not None:
            out = hook(f"{prefix}.output", out)
        return out

    def named_parameters(self) -> Iterator[Tuple[str, np.ndarray]]:
        for sub_name, module in self._submodules():
            for name, value in module.named_parameters():
                yield f"{sub_name}.{name}", value
        if self.relative_embedding is not None:
            yield "relative_embedding", self.relative_embedding

    def _submodules(self) -> Iterator[Tuple[str, Linear]]:
        yield "query", self.query
        yield "key", self.key
        yield "value", self.value
        yield "output", self.output
        if self.relative_key is not None:
            yield "relative_key", self.relative_key
        if self.relative_query is not None:
            yield "relative_query", self.relative_query

    def set_parameter(self, name: str, value: np.ndarray) -> None:
        if name == "relative_embedding":
            self.relative_embedding = np.asarray(value, dtype=np.float32)
            return
        submodule, _, local = name.partition(".")
        for sub_name, module in self._submodules():
            if sub_name == submodule:
                module.set_parameter(local, value)
                return
        raise KeyError(name)
