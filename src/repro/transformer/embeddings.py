"""Input embeddings: token + position + segment, followed by LayerNorm."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.transformer.layers import ActivationTransform, Embedding, LayerNorm, Module


class TransformerEmbeddings(Module):
    """BERT-style input embedding block."""

    def __init__(
        self,
        token: Embedding,
        position: Embedding,
        segment: Embedding,
        norm: LayerNorm,
    ) -> None:
        self.token = token
        self.position = position
        self.segment = segment
        self.norm = norm

    def __call__(
        self,
        token_ids: np.ndarray,
        segment_ids: Optional[np.ndarray] = None,
        hook: Optional[ActivationTransform] = None,
    ) -> np.ndarray:
        """Embed ``(batch, seq)`` token ids into ``(batch, seq, hidden)``."""
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ValueError("token_ids must have shape (batch, seq)")
        batch, seq = token_ids.shape
        if seq > self.position.num_embeddings:
            raise ValueError(
                f"sequence length {seq} exceeds max position embeddings "
                f"{self.position.num_embeddings}"
            )
        if segment_ids is None:
            segment_ids = np.zeros_like(token_ids)

        position_ids = np.broadcast_to(np.arange(seq), (batch, seq))
        embedded = self.token(token_ids) + self.position(position_ids) + self.segment(segment_ids)
        embedded = self.norm(embedded)
        if hook is not None:
            embedded = hook("embeddings.output", embedded)
        return embedded

    def named_parameters(self) -> Iterator[Tuple[str, np.ndarray]]:
        yield "token.table", self.token.table
        yield "position.table", self.position.table
        yield "segment.table", self.segment.table
        for name, value in self.norm.named_parameters():
            yield f"norm.{name}", value

    def set_parameter(self, name: str, value: np.ndarray) -> None:
        submodule, _, local = name.partition(".")
        mapping = {
            "token": self.token,
            "position": self.position,
            "segment": self.segment,
            "norm": self.norm,
        }
        if submodule not in mapping:
            raise KeyError(name)
        mapping[submodule].set_parameter(local, value)
