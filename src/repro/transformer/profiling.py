"""Activation profiling (paper Section II, Step 2).

Mokey derives each activation tensor's dictionary from its mean and
standard deviation, estimated by running the model over a single randomly
selected batch of ~8 inputs.  This module implements that profiling run:
it records per-tensor statistics for every named activation the model
emits and for every weight tensor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.transformer.model import TransformerModel
from repro.transformer.tasks import SyntheticDataset

__all__ = ["TensorStatistics", "ActivationProfiler", "profile_weights"]


@dataclass
class TensorStatistics:
    """Streaming summary statistics of a (possibly huge) tensor.

    The statistics are exactly what per-tensor dictionary generation needs:
    mean, standard deviation, min/max (for the fixed-point ``frac`` bits of
    Eq. 7) and the value count.
    """

    name: str
    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def update(self, values: np.ndarray) -> None:
        """Fold a new batch of values into the running statistics."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        batch_count = values.size
        batch_mean = float(values.mean())
        batch_m2 = float(((values - batch_mean) ** 2).sum())

        # Chan et al. parallel variance combination.
        total = self.count + batch_count
        delta = batch_mean - self.mean
        self.m2 += batch_m2 + delta ** 2 * self.count * batch_count / total
        self.mean += delta * batch_count / total
        self.count = total
        self.minimum = min(self.minimum, float(values.min()))
        self.maximum = max(self.maximum, float(values.max()))

    @property
    def std(self) -> float:
        """Population standard deviation of all folded values."""
        if self.count < 2:
            return 0.0
        return float(np.sqrt(self.m2 / self.count))

    @property
    def value_range(self) -> float:
        """max - min of the observed values."""
        if self.count == 0:
            return 0.0
        return self.maximum - self.minimum

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
        }


class ActivationProfiler:
    """Collects per-activation-tensor statistics over a profiling batch.

    Use as the ``hook`` argument of a model forward pass: the profiler
    records statistics and returns the activation unchanged, so profiling
    never perturbs the model output.
    """

    def __init__(self) -> None:
        self.statistics: Dict[str, TensorStatistics] = {}

    def __call__(self, name: str, array: np.ndarray) -> np.ndarray:
        stats = self.statistics.get(name)
        if stats is None:
            stats = TensorStatistics(name=name)
            self.statistics[name] = stats
        stats.update(array)
        return array

    def names(self) -> List[str]:
        """Names of every activation tensor observed so far."""
        return list(self.statistics.keys())

    def __getitem__(self, name: str) -> TensorStatistics:
        return self.statistics[name]

    def __len__(self) -> int:
        return len(self.statistics)

    def profile(
        self,
        model: TransformerModel,
        dataset: SyntheticDataset,
        num_samples: int = 8,
        batch_size: int = 8,
    ) -> Dict[str, TensorStatistics]:
        """Run the paper's profiling pass over ``num_samples`` inputs.

        Args:
            model: The FP model to profile.
            dataset: Pool of profiling inputs (labels are not needed).
            num_samples: How many inputs to profile over; the paper uses a
                single batch of 8 and notes fewer also works.
            batch_size: Forward-pass batch size.

        Returns:
            Mapping from activation tensor name to its statistics.
        """
        num_samples = min(num_samples, dataset.num_samples)
        for start in range(0, num_samples, batch_size):
            end = min(start + batch_size, num_samples)
            model(
                dataset.token_ids[start:end],
                segment_ids=dataset.segment_ids[start:end],
                attention_mask=dataset.attention_mask[start:end],
                hook=self,
            )
        return self.statistics


def profile_weights(model: TransformerModel) -> Dict[str, TensorStatistics]:
    """Compute the (exact) statistics of every quantizable weight tensor."""
    results: Dict[str, TensorStatistics] = {}
    for name, array in model.weight_matrices().items():
        stats = TensorStatistics(name=name)
        stats.update(array)
        results[name] = stats
    return results
