"""Transformer architecture configuration.

The configuration mirrors the knobs of the BERT family used in the paper:
BERT-Base (12 encoders, hidden 768), BERT-Large and RoBERTa-Large
(24 encoders, hidden 1024) and DeBERTa-XL (48 encoders, hidden 1024).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture hyper-parameters for an encoder-only transformer.

    Attributes:
        name: Human-readable model name (e.g. ``"bert-base"``).
        num_layers: Number of encoder blocks.
        hidden_size: Model (embedding) dimension.
        num_heads: Number of attention heads; must divide ``hidden_size``.
        intermediate_size: Feed-forward inner dimension (usually 4x hidden).
        vocab_size: Token vocabulary size.
        max_position_embeddings: Maximum supported sequence length.
        type_vocab_size: Number of segment (token-type) embeddings.
        layer_norm_eps: Epsilon used by layer normalisation.
        disentangled_attention: Whether the model uses DeBERTa-style
            disentangled (content/position) attention.
        dtype: NumPy dtype name used for parameters ("float32" or "float16").
    """

    name: str
    num_layers: int
    hidden_size: int
    num_heads: int
    intermediate_size: int
    vocab_size: int = 30522
    max_position_embeddings: int = 512
    type_vocab_size: int = 2
    layer_norm_eps: float = 1e-12
    disentangled_attention: bool = False
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError(
                f"hidden_size ({self.hidden_size}) must be divisible by "
                f"num_heads ({self.num_heads})"
            )
        if self.num_layers <= 0:
            raise ValueError("num_layers must be positive")
        if self.intermediate_size <= 0:
            raise ValueError("intermediate_size must be positive")

    @property
    def head_dim(self) -> int:
        """Per-head dimension of queries, keys and values."""
        return self.hidden_size // self.num_heads

    @property
    def bytes_per_value(self) -> int:
        """Bytes used to store one parameter or activation value."""
        return 2 if self.dtype == "float16" else 4

    def summary(self) -> str:
        """One-line human description (used by ``repro registry list models``)."""
        return (
            f"{self.num_layers} layers, hidden {self.hidden_size}, "
            f"{self.num_heads} heads, vocab {self.vocab_size}"
            + (", disentangled attention" if self.disentangled_attention else "")
        )

    def parameter_count(self) -> int:
        """Total parameter count (weights + biases + embeddings).

        The count follows the standard BERT layout: token/position/segment
        embeddings, one embedding LayerNorm, and per encoder block the four
        attention projections, two feed-forward projections and two
        LayerNorms.
        """
        h = self.hidden_size
        i = self.intermediate_size
        embeddings = (
            self.vocab_size * h
            + self.max_position_embeddings * h
            + self.type_vocab_size * h
            + 2 * h  # embedding LayerNorm gamma + beta
        )
        per_layer = (
            4 * (h * h + h)  # Q, K, V, attention-output projections
            + (h * i + i)  # FFN up-projection
            + (i * h + h)  # FFN down-projection
            + 4 * h  # two LayerNorms (gamma + beta each)
        )
        if self.disentangled_attention:
            # DeBERTa adds relative-position projection matrices per layer.
            per_layer += 2 * (h * h)
        return embeddings + self.num_layers * per_layer

    def parameter_bytes(self) -> int:
        """Parameter footprint in bytes at the configured dtype."""
        return self.parameter_count() * self.bytes_per_value

    def activation_values_per_layer(self, sequence_length: int) -> int:
        """Number of activation values produced by one encoder block.

        Counts the intermediate tensors a dataflow has to buffer when
        executing one encoder block for a single input sequence: the
        Q/K/V projections, the attention-probability matrix (which grows
        quadratically with sequence length), the context output, the FFN
        intermediate and the two residual streams.
        """
        s = sequence_length
        h = self.hidden_size
        i = self.intermediate_size
        qkv = 3 * s * h
        attention_scores = self.num_heads * s * s
        context = s * h
        attention_output = s * h
        ffn_intermediate = s * i
        ffn_output = s * h
        return qkv + attention_scores + context + attention_output + ffn_intermediate + ffn_output

    def activation_bytes_per_layer(self, sequence_length: int) -> int:
        """Activation footprint of one encoder block in bytes."""
        return self.activation_values_per_layer(sequence_length) * self.bytes_per_value

    def activation_bytes(self, sequence_length: int) -> int:
        """Total activation footprint across all encoder blocks in bytes."""
        return self.num_layers * self.activation_bytes_per_layer(sequence_length)

    def scaled(self, factor: int, name_suffix: str = "-sim") -> "TransformerConfig":
        """Return a functionally equivalent config shrunk by ``factor``.

        The full-size models of the paper (110M-750M parameters) are too
        large to instantiate repeatedly as NumPy arrays in tests, so the
        fidelity experiments run on architecture-preserving scaled models:
        the hidden/intermediate sizes and vocabulary shrink while the layer
        count and head structure are preserved as far as divisibility
        allows.  The accelerator/footprint experiments always use the
        full-size configuration analytically.
        """
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        if factor == 1:
            return self
        hidden = max(self.num_heads, self.hidden_size // factor)
        hidden -= hidden % self.num_heads
        hidden = max(hidden, self.num_heads)
        return replace(
            self,
            name=self.name + name_suffix,
            hidden_size=hidden,
            intermediate_size=max(4, self.intermediate_size // factor),
            vocab_size=max(64, self.vocab_size // factor),
            max_position_embeddings=min(self.max_position_embeddings, 512),
        )

    def to_dict(self) -> Dict[str, object]:
        """Return a plain-dict view of the configuration."""
        return {
            "name": self.name,
            "num_layers": self.num_layers,
            "hidden_size": self.hidden_size,
            "num_heads": self.num_heads,
            "intermediate_size": self.intermediate_size,
            "vocab_size": self.vocab_size,
            "max_position_embeddings": self.max_position_embeddings,
            "type_vocab_size": self.type_vocab_size,
            "layer_norm_eps": self.layer_norm_eps,
            "disentangled_attention": self.disentangled_attention,
            "dtype": self.dtype,
        }
