"""Plain-text report formatting shared by the benchmarks and examples."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["format_table", "format_series"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table.

    Args:
        headers: Column headers.
        rows: Row values; each row must have the same length as ``headers``.
    """
    rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
    widths = [
        max(len(str(headers[col])), max((len(row[col]) for row in rows), default=0))
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(str(headers[col]).ljust(widths[col]) for col in range(len(headers))),
        "  ".join("-" * widths[col] for col in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(row[col].ljust(widths[col]) for col in range(len(headers))))
    return "\n".join(lines)


def format_series(name: str, points: Dict[object, float], unit: str = "") -> str:
    """Render a one-line-per-point series (used for figure-style outputs)."""
    lines = [f"{name}:"]
    for key, value in points.items():
        suffix = f" {unit}" if unit else ""
        lines.append(f"  {key}: {_fmt(value)}{suffix}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
