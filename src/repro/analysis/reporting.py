"""Report formatting shared by the benchmarks, examples and the CLI.

ASCII tables (:func:`format_table`, :func:`format_series`) are for humans;
:func:`format_csv` and :func:`format_json` emit machine-readable output so
``repro campaign`` results feed spreadsheets and downstream analysis.
:func:`format_records` dispatches between the three given a list of flat
row dicts (e.g. ``CampaignResult.to_dicts()``).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_csv", "format_json", "format_records"]

#: Output formats understood by :func:`format_records`.
RECORD_FORMATS = ("table", "csv", "json")


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table.

    Args:
        headers: Column headers.
        rows: Row values; each row must have the same length as ``headers``.
    """
    rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
    widths = [
        max(len(str(headers[col])), max((len(row[col]) for row in rows), default=0))
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(str(headers[col]).ljust(widths[col]) for col in range(len(headers))),
        "  ".join("-" * widths[col] for col in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(row[col].ljust(widths[col]) for col in range(len(headers))))
    return "\n".join(lines)


def format_series(name: str, points: Dict[object, float], unit: str = "") -> str:
    """Render a one-line-per-point series (used for figure-style outputs)."""
    lines = [f"{name}:"]
    for key, value in points.items():
        suffix = f" {unit}" if unit else ""
        lines.append(f"  {key}: {_fmt(value)}{suffix}")
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as RFC-4180 CSV with a header line.

    Values are written verbatim (full float precision), not through the
    table formatter's display rounding.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        writer.writerow(list(row))
    return buffer.getvalue().rstrip("\n")


def format_json(rows: Sequence[Mapping[str, object]]) -> str:
    """Render row dicts as an indented JSON array."""
    return json.dumps(list(rows), indent=2, sort_keys=False)


def format_records(rows: Sequence[Mapping[str, object]], fmt: str = "table") -> str:
    """Render flat row dicts in the requested format.

    Args:
        rows: Uniform row dicts (e.g. ``CampaignResult.to_dicts()``);
            column order follows the first row's key order, and keys
            missing from later rows render empty.
        fmt: One of ``"table"``, ``"csv"`` or ``"json"``.
    """
    if fmt not in RECORD_FORMATS:
        raise ValueError(f"unknown format {fmt!r} (choose from {', '.join(RECORD_FORMATS)})")
    if fmt == "json":
        return format_json(rows)
    headers: List[str] = []
    for row in rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    cells = [[row.get(key, "") for key in headers] for row in rows]
    if fmt == "csv":
        return format_csv(headers, cells)
    return format_table(headers, cells)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
