"""Table I and joint accuracy-vs-efficiency rows from campaign records.

The paper reports accuracy and cost *together*: Table I gives the task
fidelity of Mokey's quantization per model/task, Table IV compares methods
on accuracy *and* speedup/energy at once.  This module turns the joint
records an accuracy campaign produces
(:class:`~repro.experiments.campaign.ScenarioRecord` with ``fidelity``
set) into flat report rows for
:func:`~repro.analysis.reporting.format_records` — the ``repro table1``
command is a thin wrapper around these builders.

Scores are fidelity to each model's own FP behaviour, so the "err" columns
are directly comparable with the paper's "Err" quantity (degradation
relative to the FP baseline; DESIGN.md §2); the paper's reported values
ride along in ``paper_*`` columns for side-by-side reading.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.experiments.campaign import ScenarioRecord
from repro.transformer.model_zoo import PAPER_MODELS

__all__ = ["PAPER_TABLE1", "table1_rows", "joint_rows"]

#: Paper Table I reference values per (model, task):
#: (FP score, W-only err, W+A err, W OT%, A OT%).
PAPER_TABLE1: Dict[Tuple[str, str], Tuple[float, float, float, float, float]] = {
    ("bert-base", "mnli"): (84.44, -0.36, 0.22, 1.6, 4.5),
    ("bert-large", "mnli"): (86.65, 0.26, 0.96, 1.51, 4.0),
    ("bert-large", "stsb"): (90.25, 0.13, 0.74, 1.51, 2.5),
    ("bert-large", "squad"): (93.15, -0.02, 0.93, 1.54, 1.7),
    ("roberta-large", "mnli"): (90.58, 0.20, 0.77, 1.48, 4.1),
    ("roberta-large", "stsb"): (92.41, 0.16, 0.89, 1.48, 4.4),
    ("roberta-large", "squad"): (93.56, 0.31, 0.98, 1.48, 2.9),
    ("deberta-xl", "mnli"): (91.75, -0.03, 0.57, 1.2, 4.3),
}

#: Paper row order: Table I's eight (model, task) pairs.
_PAPER_ORDER: Tuple[Tuple[str, str], ...] = tuple((m, t) for (m, t, _s, _h) in PAPER_MODELS)


def _paper_ordered(keys: Iterable[Tuple[str, str]]) -> List[Tuple[str, str]]:
    """Paper rows first (in Table I order), any extra pairs after, sorted."""
    keys = set(keys)
    ordered = [key for key in _PAPER_ORDER if key in keys]
    ordered.extend(sorted(keys - set(_PAPER_ORDER)))
    return ordered


def table1_rows(
    records: Iterable[ScenarioRecord], scheme: str = "mokey"
) -> List[Dict[str, object]]:
    """Table I rows: per (model, task) fidelity of ``scheme``'s numerics.

    Takes any iterable of campaign records (e.g. a
    :class:`~repro.experiments.campaign.CampaignResult`), keeps those
    carrying a fidelity result for ``scheme``, dedupes to one row per
    (model, task) — fidelity is identical across seq/batch/buffer points
    by construction — and orders the paper's eight rows first.  The
    ``paper_*`` columns carry Table I's reported values where available.
    """
    chosen: Dict[Tuple[str, str], ScenarioRecord] = {}
    for record in records:
        if record.fidelity is None or record.fidelity.scheme != scheme:
            continue
        chosen.setdefault((record.scenario.model, record.scenario.task), record)

    rows: List[Dict[str, object]] = []
    for model, task in _paper_ordered(chosen):
        fidelity = chosen[(model, task)].fidelity
        paper = PAPER_TABLE1.get((model, task))
        rows.append(
            {
                "model": model,
                "task": task,
                "metric": fidelity.metric,
                "fp_score": fidelity.fp_score,
                "weight_only_err": fidelity.weight_only_error,
                "weight_activation_err": (
                    "" if fidelity.weight_activation_error is None
                    else fidelity.weight_activation_error
                ),
                "weight_outlier_pct": 100.0 * fidelity.weight_outlier_fraction,
                "activation_outlier_pct": 100.0 * fidelity.activation_outlier_fraction,
                "paper_fp_score": "" if paper is None else paper[0],
                "paper_weight_only_err": "" if paper is None else paper[1],
                "paper_weight_activation_err": "" if paper is None else paper[2],
                "paper_weight_outlier_pct": "" if paper is None else paper[3],
                "paper_activation_outlier_pct": "" if paper is None else paper[4],
            }
        )
    return rows


def joint_rows(
    records: Iterable[ScenarioRecord],
    target_design: str = "mokey",
    baseline_design: str = "tensor-cores",
) -> List[Dict[str, object]]:
    """Joint accuracy-vs-speedup/energy rows (Table IV style).

    Pairs each ``target_design`` record carrying fidelity with the
    ``baseline_design`` record of the same workload point (model, task,
    sequence length, batch, buffer) and reports the fidelity cost next to
    the speedup and energy-efficiency gain over the baseline — the
    accuracy and hardware halves of the paper's claim in one row.
    Baseline points without a counterpart are skipped.
    """
    baselines: Dict[Tuple[str, str, int, int, int], ScenarioRecord] = {}
    targets: Dict[Tuple[str, str, int, int, int], ScenarioRecord] = {}
    for record in records:
        point = (
            record.scenario.model,
            record.scenario.task,
            record.scenario.resolved_sequence_length,
            record.scenario.batch_size,
            record.scenario.buffer_bytes,
        )
        if record.scenario.design == baseline_design:
            baselines.setdefault(point, record)
        elif record.scenario.design == target_design and record.fidelity is not None:
            targets.setdefault(point, record)

    rows: List[Dict[str, object]] = []
    ordered_points = sorted(
        targets,
        key=lambda point: (
            _PAPER_ORDER.index(point[:2]) if point[:2] in _PAPER_ORDER else len(_PAPER_ORDER),
            point,
        ),
    )
    for point in ordered_points:
        target = targets[point]
        baseline: Optional[ScenarioRecord] = baselines.get(point)
        if baseline is None:
            continue
        fidelity = target.fidelity
        error = fidelity.weight_activation_error
        if error is None:
            error = fidelity.weight_only_error
        rows.append(
            {
                "model": point[0],
                "task": point[1],
                "sequence_length": point[2],
                "batch_size": point[3],
                "metric": fidelity.metric,
                "scheme": fidelity.scheme,
                "fidelity_err": error,
                "weight_compression": fidelity.compression_ratio,
                "speedup": target.result.speedup_over(baseline.result),
                "energy_efficiency": target.result.energy_efficiency_over(baseline.result),
                "baseline": baseline_design,
            }
        )
    return rows
