"""Analysis helpers: footprint studies, fidelity tables, report formatting."""

from repro.analysis.fidelity import PAPER_TABLE1, joint_rows, table1_rows
from repro.analysis.footprint import footprint_vs_sequence_length
from repro.analysis.reporting import (
    format_csv,
    format_json,
    format_records,
    format_series,
    format_table,
)

__all__ = [
    "PAPER_TABLE1",
    "joint_rows",
    "table1_rows",
    "footprint_vs_sequence_length",
    "format_table",
    "format_series",
    "format_csv",
    "format_json",
    "format_records",
]
