"""Analysis helpers: footprint studies and report formatting."""

from repro.analysis.footprint import footprint_vs_sequence_length
from repro.analysis.reporting import (
    format_csv,
    format_json,
    format_records,
    format_series,
    format_table,
)

__all__ = [
    "footprint_vs_sequence_length",
    "format_table",
    "format_series",
    "format_csv",
    "format_json",
    "format_records",
]
