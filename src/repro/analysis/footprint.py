"""Weight/activation footprint analysis (paper Fig. 1).

Figure 1 plots the total memory footprint of BERT-Large as a function of
sequence length, split into weights and activations, showing that
activations dominate beyond ~512 tokens — the motivation for quantizing
activations and not just weights.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.memory.compression import FootprintBreakdown, model_memory_footprint
from repro.transformer.config import TransformerConfig
from repro.transformer.model_zoo import MODEL_CONFIGS

__all__ = ["footprint_vs_sequence_length"]

DEFAULT_SEQUENCE_LENGTHS = (128, 256, 512, 1024, 2048)


def footprint_vs_sequence_length(
    model_name: str = "bert-large",
    sequence_lengths: Iterable[int] = DEFAULT_SEQUENCE_LENGTHS,
    bits_per_value: float = 16.0,
    config: TransformerConfig = None,
) -> List[FootprintBreakdown]:
    """Footprint breakdowns over a sweep of sequence lengths.

    Args:
        model_name: Model to analyse (BERT-Large in the paper's figure).
        sequence_lengths: Sequence lengths to sweep.
        bits_per_value: Storage precision (FP16 in the figure).
        config: Explicit configuration overriding ``model_name``.
    """
    if config is None:
        config = MODEL_CONFIGS[model_name]
    return [
        model_memory_footprint(
            config,
            sequence_length,
            weight_bits=bits_per_value,
            activation_bits=bits_per_value,
            label=f"{config.name}/seq{sequence_length}",
        )
        for sequence_length in sequence_lengths
    ]
