"""Per-tensor dictionaries (paper Section II-C and II-E).

Every weight and activation tensor gets two dictionaries:

* a **Gaussian dictionary** obtained by the linear transformation
  ``GD * s + m`` of the Golden Dictionary, covering the bulk of the values
  near the mean, and
* an **Outlier dictionary** of up to 16 fixed-point centroids covering the
  rare values of much larger magnitude.

For weights the mean/std/outlier statistics come straight from the tensor;
for activations they come from the profiling run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.agglomerative import agglomerative_cluster_1d
from repro.core.fixed_point import FixedPointFormat
from repro.core.golden_dictionary import GoldenDictionary

__all__ = ["TensorDictionary", "EncodedValues"]


@dataclass
class EncodedValues:
    """The raw per-value encoding produced by :meth:`TensorDictionary.encode`.

    Attributes:
        is_outlier: Boolean array marking values encoded with the outlier
            dictionary.
        sign: +1 / -1 sign of the Gaussian-normalised value (meaningful for
            Gaussian-encoded entries only).
        gaussian_index: 3-bit magnitude index into the Gaussian half
            dictionary (meaningful for Gaussian-encoded entries only).
        outlier_index: 4-bit index into the outlier dictionary (meaningful
            for outlier entries only).
    """

    is_outlier: np.ndarray
    sign: np.ndarray
    gaussian_index: np.ndarray
    outlier_index: np.ndarray

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.is_outlier.shape

    @property
    def size(self) -> int:
        return int(self.is_outlier.size)

    @property
    def outlier_count(self) -> int:
        """Number of values encoded through the outlier dictionary."""
        return int(self.is_outlier.sum())

    @property
    def outlier_fraction(self) -> float:
        """Fraction of values encoded through the outlier dictionary."""
        if self.size == 0:
            return 0.0
        return self.outlier_count / self.size


@dataclass
class TensorDictionary:
    """Gaussian + outlier dictionaries fitted to one tensor.

    Attributes:
        name: Tensor name (for reporting).
        mean: Tensor mean ``m``.
        std: Tensor standard deviation ``s``.
        golden: The Golden Dictionary this tensor dictionary was derived from.
        gaussian_half: Gaussian half magnitudes in *normalised* units
            (multiples of ``std``); scaled/shifted on decode.
        outlier_centroids: Signed outlier centroid values in the tensor's own
            units (already include mean/std), sorted ascending.  May be empty
            when the tensor has no outliers.
        fixed_point: Per-layer 16-bit fixed-point format (Eq. 7) applied to
            centroids and decoded values.
        threshold: Magnitude of ``value - mean`` above which a value is
            treated as an outlier.
    """

    name: str
    mean: float
    std: float
    golden: GoldenDictionary
    gaussian_half: np.ndarray
    outlier_centroids: np.ndarray
    fixed_point: FixedPointFormat
    threshold: float

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def fit(
        cls,
        name: str,
        golden: GoldenDictionary,
        values: Optional[np.ndarray] = None,
        mean: Optional[float] = None,
        std: Optional[float] = None,
        minimum: Optional[float] = None,
        maximum: Optional[float] = None,
        use_exponential: bool = True,
        max_outlier_entries: int = 16,
        fixed_point_bits: int = 16,
        outlier_samples: Optional[np.ndarray] = None,
    ) -> "TensorDictionary":
        """Fit the per-tensor dictionaries.

        Either ``values`` (the full tensor, used for weights) or the
        pre-computed statistics ``mean``/``std``/``minimum``/``maximum``
        plus optional ``outlier_samples`` (used for profiled activations)
        must be provided.

        Args:
            name: Tensor name.
            golden: The Golden Dictionary.
            values: Full tensor values (weights path).
            mean: Pre-computed mean (activations path).
            std: Pre-computed standard deviation (activations path).
            minimum: Pre-computed minimum (activations path).
            maximum: Pre-computed maximum (activations path).
            use_exponential: Store the exponential-curve centroids (True for
                the Mokey accelerator).
            max_outlier_entries: Outlier dictionary capacity (16 in the paper).
            fixed_point_bits: Per-layer fixed-point width (16 in the paper).
            outlier_samples: Sampled values used to place outlier centroids
                when ``values`` is not given.
        """
        if values is not None:
            values = np.asarray(values, dtype=np.float64).ravel()
            if values.size == 0:
                raise ValueError(f"tensor {name!r} is empty")
            mean = float(values.mean())
            std = float(values.std())
            minimum = float(values.min())
            maximum = float(values.max())
        else:
            if mean is None or std is None or minimum is None or maximum is None:
                raise ValueError(
                    "either values or (mean, std, minimum, maximum) must be provided"
                )

        std = max(float(std), 1e-12)
        fixed_point = FixedPointFormat.for_range(minimum, maximum, total_bits=fixed_point_bits)
        gaussian_half = golden.stored_half(use_exponential=use_exponential)
        threshold = golden.gaussian_threshold() * std

        # Outlier centroids are placed from whatever samples are available.
        if values is not None:
            sample_pool = values
        elif outlier_samples is not None:
            sample_pool = np.asarray(outlier_samples, dtype=np.float64).ravel()
        else:
            sample_pool = np.empty(0)
        outlier_centroids = cls._fit_outlier_centroids(
            sample_pool, mean, threshold, max_outlier_entries, fixed_point
        )

        return cls(
            name=name,
            mean=float(mean),
            std=std,
            golden=golden,
            gaussian_half=gaussian_half,
            outlier_centroids=outlier_centroids,
            fixed_point=fixed_point,
            threshold=threshold,
        )

    @staticmethod
    def _fit_outlier_centroids(
        samples: np.ndarray,
        mean: float,
        threshold: float,
        max_entries: int,
        fixed_point: FixedPointFormat,
    ) -> np.ndarray:
        """Cluster the outlier samples into at most ``max_entries`` centroids."""
        if samples.size == 0 or max_entries <= 0:
            # max_entries == 0 models the ablation where outliers are clamped
            # into the Gaussian dictionary instead of getting their own.
            return np.empty(0, dtype=np.float64)
        outliers = samples[np.abs(samples - mean) > threshold]
        if outliers.size == 0:
            return np.empty(0, dtype=np.float64)
        if outliers.size <= max_entries:
            centroids = np.sort(np.unique(outliers))
        else:
            centroids = agglomerative_cluster_1d(outliers, max_entries).centroids
        return fixed_point.quantize(centroids)

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    @property
    def has_outliers(self) -> bool:
        return self.outlier_centroids.size > 0

    def gaussian_centroids(self) -> np.ndarray:
        """All signed Gaussian centroid values in tensor units, ascending."""
        half = self.gaussian_half * self.std
        return self.fixed_point.quantize(
            np.concatenate([self.mean - half[::-1], self.mean + half])
        )

    def all_centroids(self) -> np.ndarray:
        """Gaussian + outlier centroid values, sorted ascending (Fig. 7 view)."""
        return np.sort(np.concatenate([self.gaussian_centroids(), self.outlier_centroids]))

    def metadata_bits(self, centroid_bits: int = 16) -> int:
        """Bits of per-tensor metadata stored alongside the model.

        A Gaussian half dictionary (8 x 16b), the outlier dictionary
        (up to 16 x 16b) and four 16-bit constants (mean, std and the
        pre-computed SoW2 / PoM terms).
        """
        gaussian = self.gaussian_half.size * centroid_bits
        outlier = max(self.outlier_centroids.size, 0) * centroid_bits
        constants = 4 * centroid_bits
        return gaussian + outlier + constants

    # ------------------------------------------------------------------ #
    # Encode / decode
    # ------------------------------------------------------------------ #
    def encode(self, values: np.ndarray) -> EncodedValues:
        """Encode a tensor into sign/index/outlier form."""
        values = np.asarray(values, dtype=np.float64)
        centred = values - self.mean
        is_outlier = np.abs(centred) > self.threshold
        if not self.has_outliers:
            is_outlier = np.zeros_like(is_outlier)

        sign = np.where(centred >= 0, 1, -1).astype(np.int8)
        normalised = np.abs(centred) / self.std
        # Nearest Gaussian half magnitude via midpoint search.
        midpoints = (self.gaussian_half[:-1] + self.gaussian_half[1:]) / 2.0
        gaussian_index = np.searchsorted(midpoints, normalised).astype(np.int8)

        if self.has_outliers:
            ot_midpoints = (self.outlier_centroids[:-1] + self.outlier_centroids[1:]) / 2.0
            outlier_index = np.searchsorted(ot_midpoints, values).astype(np.int8)
        else:
            outlier_index = np.zeros(values.shape, dtype=np.int8)

        return EncodedValues(
            is_outlier=is_outlier,
            sign=sign,
            gaussian_index=gaussian_index,
            outlier_index=outlier_index,
        )

    def decode(self, encoded: EncodedValues, apply_fixed_point: bool = True) -> np.ndarray:
        """Reconstruct tensor values from their encoding.

        Args:
            encoded: The per-value encoding.
            apply_fixed_point: Round the reconstruction to the per-layer
                16-bit fixed-point grid (the hardware behaviour).  Tests of
                the index-domain arithmetic disable this to compare exact
                real-valued results.
        """
        magnitudes = self.gaussian_half[encoded.gaussian_index]
        gaussian_values = encoded.sign * magnitudes * self.std + self.mean
        if self.has_outliers:
            outlier_values = self.outlier_centroids[encoded.outlier_index]
            decoded = np.where(encoded.is_outlier, outlier_values, gaussian_values)
        else:
            decoded = gaussian_values
        if apply_fixed_point:
            return self.fixed_point.quantize(decoded)
        return decoded

    def quantize_dequantize(self, values: np.ndarray) -> np.ndarray:
        """Round-trip ``values`` through the 4-bit encoding ("fake quantization")."""
        return self.decode(self.encode(values)).astype(np.float32)
