"""Index-domain computation (paper Section II-D, Fig. 4, Eq. 3-6).

Because every Gaussian-encoded value has the form
``theta * (a**int + b) * s + m``, the dot product of an activation vector
with a weight vector decomposes into four families of terms:

* ``SoI``  — sum of ``a**(int_A + int_W)`` signed by ``theta_A * theta_W``,
  accumulated as a 15-entry signed histogram of exponent sums;
* ``SoA1`` / ``SoA2`` — sums of activation exponentials signed by the
  product sign / the activation sign alone (Eq. 4);
* ``SoW1`` / ``SoW2`` — the symmetric weight-side terms (Eq. 5);
* ``PoM1..4`` — the sign-count and constant terms (Eq. 6).

Pairs in which either operand is an outlier are excluded from the
histograms and handled by a direct multiply-accumulate on their 16-bit
centroids, exactly like the hardware's OPP unit.

Two engines implement the arithmetic:

* :class:`IndexDomainEngine` — the faithful scalar engine: one Python
  ``dot`` per output activation, histograms accumulated with
  ``np.add.at`` exactly as the GPE's counter register files do.  It is the
  correctness reference for the hardware model and for the vectorized
  engine, but a Python loop per output element makes it unusable at model
  scale (a single BERT-base GEMM holds ~10^5 outputs).
* :class:`VectorizedIndexDomainEngine` — computes whole GEMMs with NumPy
  array operations, ~100-1000x faster at layer shapes.

**The bincount / indicator-product formulation.**  The symbol alphabet is
tiny — 8 Gaussian magnitudes x sign plus up to 16 outlier centroids — so
every per-output histogram is a ``np.bincount`` of 4-bit symbols, and the
post-processing step only ever multiplies a histogram by fixed per-bin
weights (``a**bin`` for SoI, Eq. 3-6 constants for the rest).  Weighted
reduction commutes with accumulation: instead of materialising the
histogram of exponent sums and then reducing it, map every symbol to its
per-bin weight *first* (an 8-entry lookup table, i.e. an indicator matrix
``X`` with ``X[s, k] = [symbol_k == s]`` contracted against the weight
table) and let one matrix product accumulate all outputs of the GEMM at
once.  Concretely, with Gaussian masks ``g`` (1 where a value is not an
outlier), signs ``theta`` and exponent indexes ``i``:

    ``U = theta_A * a**i_A * g_A``, ``T = theta_A * g_A``, ``G = g_A``
    (each ``(M, K)``), and symmetrically ``V, R, H`` for the weights
    (each ``(K, N)``).  Then, for every output at once,

    ``sum_bins SoI_hist * a**bin  = U @ V``
    ``sum_bins SoA1_hist * a**bin = U @ R``   (and ``T @ V`` for SoW1)
    ``PoM1 counts                 = T @ R``   (sign-product counts)
    ``per-output Gaussian-pair counts = G @ H``

Because every ``U``-family product enters Eq. 3-6 alongside its
``b``-weighted ``T``-family partner, the implementation folds the offset
up front — ``P = U + b*T = theta * (a**i + b) * g`` (exactly the decoded
magnitude of the symbol) and ``Q = V + b*R`` — which merges the four
SoI/SoA1/SoW1/PoM1 products into the single block ``P @ Q``.  The four
remaining pairwise products of ``{P, G}`` x ``{Q, H}`` are what one
stacked ``(2M, K) @ (K, 2N)`` BLAS call produces together.  Outlier
pairs — the pairs masked *out* of the planes above — are handled by
masked direct MACs on the decoded 16-bit centroids, mirroring the OPP.
Operation statistics are exact integer counts derived from the indicator
planes alone, so the vectorized engine reports *identical*
:class:`IndexComputeStats` to the scalar engine (a property-test-locked
guarantee), while values agree to floating-point round-off.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.quantizer import QuantizedTensor
from repro.core.tensor_dictionary import EncodedValues, TensorDictionary

__all__ = [
    "IndexComputeStats",
    "IndexComputeResult",
    "IndexMatmulResult",
    "IndexDomainEngine",
    "VectorizedIndexDomainEngine",
    "TorchIndexDomainEngine",
    "ENGINE_BACKENDS",
    "ENGINE_DESCRIPTIONS",
    "available_engines",
    "resolve_engine",
    "make_engine",
    "index_domain_dot",
    "index_domain_matmul",
    "index_domain_matmul_many",
    "vectorized_index_domain_matmul",
]


@dataclass
class IndexComputeStats:
    """Operation counts of one index-domain dot product.

    These counts drive the accelerator energy model: the bulk of the work
    is narrow additions (index sums and counter updates) and the rare
    outlier pairs cost a full 16-bit MAC each.
    """

    gaussian_pairs: int = 0
    outlier_pairs: int = 0
    index_additions: int = 0
    counter_updates: int = 0
    post_processing_macs: int = 0

    @property
    def total_pairs(self) -> int:
        return self.gaussian_pairs + self.outlier_pairs

    @property
    def outlier_pair_fraction(self) -> float:
        total = self.total_pairs
        return self.outlier_pairs / total if total else 0.0

    def merge(self, other: "IndexComputeStats") -> "IndexComputeStats":
        """Accumulate another dot product's counts into this one."""
        self.gaussian_pairs += other.gaussian_pairs
        self.outlier_pairs += other.outlier_pairs
        self.index_additions += other.index_additions
        self.counter_updates += other.counter_updates
        self.post_processing_macs += other.post_processing_macs
        return self

    def scaled(self, factor: int) -> "IndexComputeStats":
        """The counts of ``factor`` identically-shaped repetitions.

        Exact for every count that depends on shape alone; models the
        repetitions' outlier pairs as matching this instance.  (The layer
        executor measures every head/batch instance directly; this is the
        cheap alternative for callers that extrapolate instead.)
        """
        return IndexComputeStats(
            gaussian_pairs=self.gaussian_pairs * factor,
            outlier_pairs=self.outlier_pairs * factor,
            index_additions=self.index_additions * factor,
            counter_updates=self.counter_updates * factor,
            post_processing_macs=self.post_processing_macs * factor,
        )

    def copy(self) -> "IndexComputeStats":
        return replace(self)


@dataclass
class IndexComputeResult:
    """Value and term breakdown of one index-domain dot product."""

    value: float
    soi: float
    soa1: float
    soa2: float
    sow1: float
    sow2: float
    pom: float
    outlier_contribution: float
    stats: IndexComputeStats

    def terms(self) -> Dict[str, float]:
        return {
            "SoI": self.soi,
            "SoA1": self.soa1,
            "SoA2": self.soa2,
            "SoW1": self.sow1,
            "SoW2": self.sow2,
            "PoM": self.pom,
            "outliers": self.outlier_contribution,
        }


@dataclass
class IndexMatmulResult:
    """Outcome of one vectorized index-domain matrix multiply.

    Attributes:
        values: The ``(M, N)`` numeric result.
        stats: Exact aggregate operation counts, identical to merging the
            scalar engine's per-output statistics.
        row_stats: Per-output-row statistics (requested via
            ``per_row_stats=True``); ``None`` otherwise.
    """

    values: np.ndarray
    stats: IndexComputeStats
    row_stats: Optional[List[IndexComputeStats]] = None


class IndexDomainEngine:
    """Computes dot products directly on dictionary indexes (scalar reference).

    Args:
        activation_dictionary: Dictionary of the activation tensor.
        weight_dictionary: Dictionary of the weight tensor.

    Both dictionaries must be derived from the same Golden Dictionary so
    that they share the exponential base ``a`` and offset ``b``.
    """

    def __init__(
        self,
        activation_dictionary: TensorDictionary,
        weight_dictionary: TensorDictionary,
    ) -> None:
        fit_a = activation_dictionary.golden.fit
        fit_w = weight_dictionary.golden.fit
        if not np.isclose(fit_a.a, fit_w.a) or not np.isclose(fit_a.b, fit_w.b):
            raise ValueError(
                "activation and weight dictionaries must share the same Golden Dictionary"
            )
        self.act_dict = activation_dictionary
        self.weight_dict = weight_dictionary
        self.a = fit_a.a
        self.b = fit_a.b
        self.num_entries = fit_a.num_entries
        # Pre-computed bases a**k for every possible exponent sum (the values
        # the OPP multiplies the SoI histogram with during post-processing).
        self.soi_bases = self.a ** np.arange(2 * self.num_entries - 1, dtype=np.float64)
        self.half_bases = self.a ** np.arange(self.num_entries, dtype=np.float64)

    @property
    def post_processing_macs_per_output(self) -> int:
        """Fixed post-processing MACs per output: one per SoI bin, one per
        SoA1/SoW1 bin, one for the PoM constants (outlier MACs add on top)."""
        return (2 * self.num_entries - 1) + 2 * self.num_entries + 1

    # ------------------------------------------------------------------ #
    # Scalar (per output activation) engine
    # ------------------------------------------------------------------ #
    def dot(
        self,
        activation: EncodedValues,
        weight: EncodedValues,
    ) -> IndexComputeResult:
        """Compute one output activation from encoded input vectors."""
        if activation.shape != weight.shape:
            raise ValueError("activation and weight vectors must have the same length")

        a, b = self.a, self.b
        s_a, m_a = self.act_dict.std, self.act_dict.mean
        s_w, m_w = self.weight_dict.std, self.weight_dict.mean

        theta_a = activation.sign.astype(np.float64).ravel()
        theta_w = weight.sign.astype(np.float64).ravel()
        idx_a = activation.gaussian_index.astype(np.int64).ravel()
        idx_w = weight.gaussian_index.astype(np.int64).ravel()
        outlier_pair = (activation.is_outlier | weight.is_outlier).ravel()
        gaussian_pair = ~outlier_pair

        n_gauss = int(gaussian_pair.sum())
        n_outlier = int(outlier_pair.sum())

        # --- Histogram accumulation (what the GPE's CRFs do) -------------- #
        product_sign = (theta_a * theta_w)[gaussian_pair]
        exp_sum = (idx_a + idx_w)[gaussian_pair]
        soi_hist = np.zeros(2 * self.num_entries - 1, dtype=np.float64)
        np.add.at(soi_hist, exp_sum, product_sign)

        soa1_hist = np.zeros(self.num_entries, dtype=np.float64)
        np.add.at(soa1_hist, idx_a[gaussian_pair], product_sign)
        sow1_hist = np.zeros(self.num_entries, dtype=np.float64)
        np.add.at(sow1_hist, idx_w[gaussian_pair], product_sign)
        pom1_count = float(product_sign.sum())

        # --- Post-processing: weighted reductions (Eq. 3-6) --------------- #
        soi = s_a * s_w * float(soi_hist @ self.soi_bases)
        soa1 = s_a * s_w * b * float(soa1_hist @ self.half_bases)
        sow1 = s_w * s_a * b * float(sow1_hist @ self.half_bases)

        # Activation-only and weight-only sums over the Gaussian pairs.
        sum_theta_a_exp = float((theta_a[gaussian_pair] * self.half_bases[idx_a[gaussian_pair]]).sum())
        sum_theta_w_exp = float((theta_w[gaussian_pair] * self.half_bases[idx_w[gaussian_pair]]).sum())
        sum_theta_a = float(theta_a[gaussian_pair].sum())
        sum_theta_w = float(theta_w[gaussian_pair].sum())

        soa2 = s_a * m_w * sum_theta_a_exp
        sow2 = s_w * m_a * sum_theta_w_exp
        pom = (
            s_a * s_w * b * b * pom1_count
            + s_a * m_w * b * sum_theta_a
            + s_w * m_a * b * sum_theta_w
            + n_gauss * m_a * m_w
        )

        # --- Outlier pairs: direct MAC on decoded 16-bit centroids -------- #
        outlier_contribution = 0.0
        if n_outlier:
            decoded_a = self.act_dict.decode(activation, apply_fixed_point=False).ravel()
            decoded_w = self.weight_dict.decode(weight, apply_fixed_point=False).ravel()
            outlier_contribution = float(
                (decoded_a[outlier_pair] * decoded_w[outlier_pair]).sum()
            )

        value = soi + soa1 + soa2 + sow1 + sow2 + pom + outlier_contribution

        stats = IndexComputeStats(
            gaussian_pairs=n_gauss,
            outlier_pairs=n_outlier,
            index_additions=n_gauss,
            # Each Gaussian pair updates the SoI, SoA1, SoW1 and PoM1 counters.
            counter_updates=4 * n_gauss,
            # Post-processing: one MAC per SoI bin + per SoA1/SoW1 bin + PoM,
            # plus one MAC per outlier pair in the OPP.
            post_processing_macs=self.post_processing_macs_per_output + n_outlier,
        )
        return IndexComputeResult(
            value=value,
            soi=soi,
            soa1=soa1,
            soa2=soa2,
            sow1=sow1,
            sow2=sow2,
            pom=pom,
            outlier_contribution=outlier_contribution,
            stats=stats,
        )

    # ------------------------------------------------------------------ #
    # Batched reference
    # ------------------------------------------------------------------ #
    def matmul(
        self,
        activations: QuantizedTensor,
        weights: QuantizedTensor,
    ) -> Tuple[np.ndarray, IndexComputeStats]:
        """Index-domain matrix multiply ``activations @ weights``.

        One scalar :meth:`dot` per output element; the row and column
        slices of both encodings are precomputed once (not per output), so
        the reference stays usable in larger equivalence tests.

        Args:
            activations: Quantized ``(M, K)`` activation matrix.
            weights: Quantized ``(K, N)`` weight matrix.

        Returns:
            The ``(M, N)`` result and the merged operation statistics.
        """
        m_rows, n_cols = _check_matmul_shapes(activations, weights)

        act_rows = _split_encoded(activations.encoded, activations.shape, axis=0)
        w_cols = _split_encoded(weights.encoded, weights.shape, axis=1)
        result = np.zeros((m_rows, n_cols), dtype=np.float64)
        stats = IndexComputeStats()
        for row, a_row in enumerate(act_rows):
            for col, w_col in enumerate(w_cols):
                out = self.dot(a_row, w_col)
                result[row, col] = out.value
                stats.merge(out.stats)
        return result, stats


@dataclass
class _IndicatorPlanes:
    """The per-GEMM indicator planes of the vectorized formulation.

    ``p_a``/``g_a`` are the ``(M, K)`` activation planes (symbol-mapped
    exponential plane and Gaussian indicator), ``q_w``/``h_w`` the
    ``(K, N)`` weight planes, ``out_a``/``out_w`` the boolean outlier
    masks.  Built once per GEMM, consumed by the backend products, the
    value combination and the exact statistics.
    """

    p_a: np.ndarray
    g_a: np.ndarray
    q_w: np.ndarray
    h_w: np.ndarray
    out_a: np.ndarray
    out_w: np.ndarray

    @property
    def m_rows(self) -> int:
        return self.p_a.shape[0]

    @property
    def k_len(self) -> int:
        return self.p_a.shape[1]

    @property
    def n_cols(self) -> int:
        return self.q_w.shape[1]

    @property
    def lhs(self) -> np.ndarray:
        """The stacked ``(2M, K)`` left operand: rows ``{P, G}``."""
        return np.concatenate([self.p_a, self.g_a], axis=0)

    @property
    def rhs(self) -> np.ndarray:
        """The stacked ``(K, 2N)`` right operand: columns ``{Q, H}``."""
        return np.concatenate([self.q_w, self.h_w], axis=1)


class VectorizedIndexDomainEngine(IndexDomainEngine):
    """Whole-GEMM index-domain compute via indicator-plane BLAS products.

    Implements the bincount / indicator-product formulation described in
    the module docstring: the nine cross products of the three activation
    planes against the three weight planes are evaluated by one stacked
    matrix multiply, outlier pairs by masked direct MACs on the decoded
    centroids.  Produces the same values as the scalar engine up to
    floating-point round-off and bit-identical operation statistics.

    The computation is staged so backends can swap the dense products
    without touching the formulation: :meth:`_build_planes` (NumPy),
    :meth:`_product` / :meth:`_batched_product` (the backend seam — the
    only floating-point GEMMs in the engine), then value combination and
    the exact integer statistics (NumPy again, derived from the indicator
    planes alone).  Any backend therefore reports *identical*
    :class:`IndexComputeStats` to this oracle by construction.
    """

    # ------------------------------------------------------------------ #
    # Backend seam: the only dense floating-point products in the engine
    # ------------------------------------------------------------------ #
    def _product(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """One dense ``(R, K) @ (K, C)`` product on this backend."""
        return lhs @ rhs

    def _batched_product(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """One batched ``(B, R, K) @ (B, K, C)`` product on this backend."""
        return np.matmul(lhs, rhs)

    # ------------------------------------------------------------------ #
    # Stages of the indicator-plane formulation
    # ------------------------------------------------------------------ #
    def _build_planes(
        self, activations: QuantizedTensor, weights: QuantizedTensor
    ) -> _IndicatorPlanes:
        """Indicator planes of one GEMM (always NumPy, backend-independent).

        Activation planes (M, K): the symbol-mapped exponential plane
        ``P = theta * (a**i + b)`` masked to Gaussian entries (folding the
        offset b up front merges the SoI/SoA1/SoW1/PoM1 products into a
        single block: ``P @ Q = U@V + b*(U@R + T@V) + b^2 * T@R``), plus
        the Gaussian indicator plane ``G``.  Symmetrically ``Q, H`` for
        the weights.
        """
        m_rows, n_cols = _check_matmul_shapes(activations, weights)
        k_len = activations.shape[1]
        enc_a, enc_w = activations.encoded, weights.encoded
        b = self.b

        out_a = enc_a.is_outlier.reshape(m_rows, k_len)
        out_w = enc_w.is_outlier.reshape(k_len, n_cols)
        g_a = (~out_a).astype(np.float64)
        p_a = (
            enc_a.sign.reshape(m_rows, k_len).astype(np.float64)
            * (self.half_bases[enc_a.gaussian_index.reshape(m_rows, k_len)] + b)
            * g_a
        )
        h_w = (~out_w).astype(np.float64)
        q_w = (
            enc_w.sign.reshape(k_len, n_cols).astype(np.float64)
            * (self.half_bases[enc_w.gaussian_index.reshape(k_len, n_cols)] + b)
            * h_w
        )
        return _IndicatorPlanes(p_a=p_a, g_a=g_a, q_w=q_w, h_w=h_w, out_a=out_a, out_w=out_w)

    def _outlier_values(
        self,
        activations: QuantizedTensor,
        weights: QuantizedTensor,
        planes: _IndicatorPlanes,
    ) -> Optional[np.ndarray]:
        """Masked direct MACs on the decoded 16-bit centroids (the OPP).

        ``(A outlier, any W)`` plus ``(A Gaussian, W outlier)`` covers
        every pair in which either operand is an outlier, exactly once.
        Returns ``None`` when no operand holds outliers.
        """
        if not (planes.out_a.any() or planes.out_w.any()):
            return None
        dec_a = self.act_dict.decode(activations.encoded, apply_fixed_point=False).reshape(
            planes.m_rows, planes.k_len
        )
        dec_w = self.weight_dict.decode(weights.encoded, apply_fixed_point=False).reshape(
            planes.k_len, planes.n_cols
        )
        contribution: Optional[np.ndarray] = None
        if planes.out_a.any():
            contribution = self._product(dec_a * planes.out_a, dec_w)
        if planes.out_w.any():
            second = self._product(dec_a * planes.g_a, dec_w * planes.out_w)
            contribution = second if contribution is None else contribution + second
        return contribution

    def _combine_values(
        self,
        planes: _IndicatorPlanes,
        prod: np.ndarray,
        outlier_values: Optional[np.ndarray],
    ) -> np.ndarray:
        """Eq. 3-6 per output, all at once, from the stacked plane product.

        ``prod`` is the ``(2M, 2N)`` product of :attr:`_IndicatorPlanes.lhs`
        with :attr:`_IndicatorPlanes.rhs`: the SoI + SoA1 + SoW1 + PoM1
        family (``P @ Q``), the SoA2/PoM2 family (``P @ H``), the
        SoW2/PoM3 family (``G @ Q``) and the constant PoM4 term
        (``G @ H``).
        """
        M, N = planes.m_rows, planes.n_cols
        s_a, m_a = self.act_dict.std, self.act_dict.mean
        s_w, m_w = self.weight_dict.std, self.weight_dict.mean
        pq, ph = prod[:M, :N], prod[:M, N:]
        gq, gh = prod[M:, :N], prod[M:, N:]
        values = s_a * s_w * pq + s_a * m_w * ph + s_w * m_a * gq + m_a * m_w * gh
        if outlier_values is not None:
            values = values + outlier_values
        return values

    def _stats_from_planes(
        self, planes: _IndicatorPlanes, per_row_stats: bool = False
    ) -> Tuple[IndexComputeStats, Optional[List[IndexComputeStats]]]:
        """Exact integer statistics from the indicator planes alone.

        The Gaussian pair count of output ``(m, n)`` is ``(G @ H)[m, n]``;
        summing over ``n`` first keeps the count computation
        ``O(MK + KN)``.  Always NumPy integer arithmetic, so every
        backend reports identical counts.
        """
        m_rows, n_cols, k_len = planes.m_rows, planes.n_cols, planes.k_len
        gauss_a_int = (~planes.out_a).astype(np.int64)
        w_gauss_per_k = (~planes.out_w).sum(axis=1, dtype=np.int64)  # (K,)
        gaussian_per_row = gauss_a_int @ w_gauss_per_k  # (M,)
        pairs_per_row = n_cols * k_len
        gaussian_total = int(gaussian_per_row.sum())
        outlier_total = m_rows * pairs_per_row - gaussian_total

        fixed_macs = self.post_processing_macs_per_output
        stats = IndexComputeStats(
            gaussian_pairs=gaussian_total,
            outlier_pairs=outlier_total,
            index_additions=gaussian_total,
            counter_updates=4 * gaussian_total,
            post_processing_macs=m_rows * n_cols * fixed_macs + outlier_total,
        )

        row_stats: Optional[List[IndexComputeStats]] = None
        if per_row_stats:
            row_stats = []
            for row in range(m_rows):
                gauss = int(gaussian_per_row[row])
                outlier = pairs_per_row - gauss
                row_stats.append(
                    IndexComputeStats(
                        gaussian_pairs=gauss,
                        outlier_pairs=outlier,
                        index_additions=gauss,
                        counter_updates=4 * gauss,
                        post_processing_macs=n_cols * fixed_macs + outlier,
                    )
                )
        return stats, row_stats

    def matmul(  # type: ignore[override]
        self,
        activations: QuantizedTensor,
        weights: QuantizedTensor,
        per_row_stats: bool = False,
    ) -> "IndexMatmulResult":
        """Vectorized index-domain matrix multiply ``activations @ weights``.

        Args:
            activations: Quantized ``(M, K)`` activation matrix.
            weights: Quantized ``(K, N)`` weight matrix.
            per_row_stats: Also return one :class:`IndexComputeStats` per
                output row (the accelerator's per-output-tile view).

        Returns:
            An :class:`IndexMatmulResult` with the ``(M, N)`` values and
            exact aggregate (and optionally per-row) statistics.
        """
        planes = self._build_planes(activations, weights)
        # One stacked backend call yields the four plane products:
        # rows {P, G} x cols {Q, H}.
        prod = self._product(planes.lhs, planes.rhs)
        outlier_values = self._outlier_values(activations, weights, planes)
        values = self._combine_values(planes, prod, outlier_values)
        stats, row_stats = self._stats_from_planes(planes, per_row_stats)
        return IndexMatmulResult(values=values, stats=stats, row_stats=row_stats)


def _import_torch():
    """Import torch lazily, with an actionable error when absent."""
    try:
        import torch
    except ImportError as exc:  # pragma: no cover - exercised via mock in tests
        raise ImportError(
            "the 'torch' index-domain engine requires the optional torch "
            "dependency, which is not installed; install torch (CPU wheels "
            "suffice) or use engine='vectorized', the NumPy oracle"
        ) from exc
    return torch


class TorchIndexDomainEngine(VectorizedIndexDomainEngine):
    """Indicator-plane engine with the dense products on ``torch.einsum``.

    Plane construction, value combination and the integer statistics stay
    on NumPy — so this backend reports :class:`IndexComputeStats`
    *identical* to the vectorized oracle by construction — while every
    dense product (the stacked plane GEMM, batched group GEMMs and the
    outlier MAC matmuls) runs through ``torch.einsum`` in float64 on
    ``device``.  Values agree with the oracle to floating-point
    round-off.

    Args:
        activation_dictionary: Dictionary of the activation tensor.
        weight_dictionary: Dictionary of the weight tensor.
        device: Torch device string (``"cpu"``, ``"cuda"``, ...).
            Defaults to CUDA when available, else CPU.

    Raises:
        ImportError: When torch is not installed (the import is deferred
            to construction so environments without torch can still use
            every NumPy engine).
    """

    @staticmethod
    def ensure_available() -> None:
        """Raise the actionable ImportError now if torch is missing.

        Executors call this once at construction so a missing backend
        fails fast instead of at the first GEMM.
        """
        _import_torch()

    def __init__(
        self,
        activation_dictionary: TensorDictionary,
        weight_dictionary: TensorDictionary,
        device: Optional[str] = None,
    ) -> None:
        super().__init__(activation_dictionary, weight_dictionary)
        self._torch = _import_torch()
        if device is None:
            device = "cuda" if self._torch.cuda.is_available() else "cpu"
        self.device = str(device)

    def _tensor(self, array: np.ndarray):
        return self._torch.as_tensor(
            np.ascontiguousarray(array), dtype=self._torch.float64
        ).to(self.device)

    def _product(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        out = self._torch.einsum("mk,kn->mn", self._tensor(lhs), self._tensor(rhs))
        return out.cpu().numpy()

    def _batched_product(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        out = self._torch.einsum("bmk,bkn->bmn", self._tensor(lhs), self._tensor(rhs))
        return out.cpu().numpy()


# --------------------------------------------------------------------------- #
# Engine dispatch
# --------------------------------------------------------------------------- #

#: Backing mapping of the ``"engines"`` registry (:mod:`repro.registry`):
#: engine name → engine class.  A live view — backends registered through
#: the registry are immediately selectable by every ``engine=`` switch.
ENGINE_BACKENDS: Dict[str, type] = {
    "scalar": IndexDomainEngine,
    "vectorized": VectorizedIndexDomainEngine,
    "torch": TorchIndexDomainEngine,
}

#: One-line descriptions for ``repro registry list``.  Static strings on
#: purpose: describing the torch backend must not import torch.
ENGINE_DESCRIPTIONS: Dict[str, str] = {
    "scalar": "faithful per-output reference engine (np.add.at histograms; tests only)",
    "vectorized": "whole-GEMM NumPy indicator-plane BLAS engine — the correctness oracle",
    "torch": "optional torch einsum backend (CPU/GPU) — identical stats to the oracle",
}


def available_engines() -> Tuple[str, ...]:
    """All registered engine names, sorted."""
    return tuple(sorted(ENGINE_BACKENDS))


def resolve_engine(engine: str) -> type:
    """Engine name → engine class, with registry did-you-mean errors.

    Raises:
        RegistryError: (a ``ValueError``) when the name is unknown, naming
            the nearest registered engine when one is close.
    """
    # Lazy import: repro.registry imports this module at load time to wrap
    # ENGINE_BACKENDS; reaching back only inside the function keeps the
    # modules acyclic.
    from repro.registry import ENGINES

    return ENGINES.get(engine)


def make_engine(
    engine,
    activation_dictionary: TensorDictionary,
    weight_dictionary: TensorDictionary,
    device: Optional[str] = None,
) -> IndexDomainEngine:
    """Instantiate an engine by name (or class) for one dictionary pair.

    Args:
        engine: Registered engine name (``"vectorized"``, ``"scalar"``,
            ``"torch"``) or an engine class.
        activation_dictionary: Dictionary of the activation tensor.
        weight_dictionary: Dictionary of the weight tensor.
        device: Optional device for backends that take one (the torch
            engine); passing a device to a backend that does not accept
            it raises ``TypeError``.
    """
    cls = resolve_engine(engine) if isinstance(engine, str) else engine
    if device is not None:
        return cls(activation_dictionary, weight_dictionary, device=device)
    return cls(activation_dictionary, weight_dictionary)


def _check_matmul_shapes(
    activations: QuantizedTensor, weights: QuantizedTensor
) -> Tuple[int, int]:
    """Validate ``(M, K) @ (K, N)`` operands, returning ``(M, N)``."""
    if len(activations.shape) != 2 or len(weights.shape) != 2:
        raise ValueError("matmul expects 2-D quantized tensors")
    m_rows, k_a = activations.shape
    k_w, n_cols = weights.shape
    if k_a != k_w:
        raise ValueError("inner dimensions do not match")
    return m_rows, n_cols


def _split_encoded(
    encoded: EncodedValues, shape: Tuple[int, ...], axis: int
) -> List[EncodedValues]:
    """All rows (axis=0) or columns (axis=1) of a 2-D encoding.

    Reshapes each field exactly once and returns views, so slicing is
    O(M + N) instead of re-reshaping the full encoding per output element.
    """
    fields = (
        encoded.is_outlier.reshape(shape),
        encoded.sign.reshape(shape),
        encoded.gaussian_index.reshape(shape),
        encoded.outlier_index.reshape(shape),
    )
    count = shape[0] if axis == 0 else shape[1]
    return [
        EncodedValues(
            *(
                (matrix[index, :] if axis == 0 else matrix[:, index])
                for matrix in fields
            )
        )
        for index in range(count)
    ]


def _slice_encoded(
    encoded: EncodedValues, shape: Tuple[int, ...], index: int, axis: int
) -> EncodedValues:
    """Extract one row (axis=0) or column (axis=1) of a 2-D encoding."""

    def pick(array: np.ndarray) -> np.ndarray:
        matrix = array.reshape(shape)
        return matrix[index, :] if axis == 0 else matrix[:, index]

    return EncodedValues(
        is_outlier=pick(encoded.is_outlier),
        sign=pick(encoded.sign),
        gaussian_index=pick(encoded.gaussian_index),
        outlier_index=pick(encoded.outlier_index),
    )


def index_domain_dot(
    activations: QuantizedTensor, weights: QuantizedTensor
) -> IndexComputeResult:
    """Dot product of two 1-D quantized tensors in the index domain."""
    engine = IndexDomainEngine(activations.dictionary, weights.dictionary)
    return engine.dot(activations.encoded, weights.encoded)


def index_domain_matmul(
    activations: QuantizedTensor,
    weights: QuantizedTensor,
    engine: str = "vectorized",
    device: Optional[str] = None,
) -> Tuple[np.ndarray, IndexComputeStats]:
    """Matrix multiply of quantized tensors in the index domain.

    Args:
        activations: Quantized ``(M, K)`` activation matrix.
        weights: Quantized ``(K, N)`` weight matrix.
        engine: Registered engine name — ``"vectorized"`` (default;
            whole-GEMM NumPy array ops), ``"torch"`` (optional einsum
            backend) or ``"scalar"`` (the faithful per-output reference).
            Unknown names raise a registry error with a did-you-mean
            suggestion.
        device: Optional device for backends that take one.
    """
    resolved = make_engine(engine, activations.dictionary, weights.dictionary, device=device)
    out = resolved.matmul(activations, weights)
    if isinstance(out, IndexMatmulResult):
        return out.values, out.stats
    return out


def index_domain_matmul_many(
    pairs,
    engine: str = "vectorized",
    device: Optional[str] = None,
) -> List[IndexMatmulResult]:
    """Run many index-domain GEMMs, batching same-shape products.

    The per-head attention GEMMs of a layer — and the same projection
    GEMMs across a model's layers — share one ``(M, K, N)`` shape, so
    their stacked indicator-plane products can be evaluated by a single
    batched BLAS (or torch ``bmm``) call instead of one call per GEMM.
    This function groups ``pairs`` by shape and does exactly that; the
    per-pair scale combination, outlier MACs and exact integer statistics
    are unchanged, so every returned :class:`IndexMatmulResult` carries
    statistics *identical* to a per-GEMM :func:`index_domain_matmul` run
    (values agree to floating-point round-off).

    Args:
        pairs: Sequence of ``(activations, weights)`` quantized 2-D
            tensor pairs.  Per-pair dictionaries may differ (each tensor
            keeps its own std/mean scales), but all must derive from the
            same Golden Dictionary fit.
        engine: Registered engine name; the scalar reference has no
            batched path and falls back to per-pair execution.
        device: Optional device for backends that take one.

    Returns:
        One :class:`IndexMatmulResult` per input pair, in input order.
    """
    pairs = list(pairs)
    if not pairs:
        return []
    engines = [
        make_engine(engine, act.dictionary, weights.dictionary, device=device)
        for act, weights in pairs
    ]
    base = engines[0]
    for other in engines[1:]:
        if (
            not np.isclose(other.a, base.a)
            or not np.isclose(other.b, base.b)
            or other.num_entries != base.num_entries
        ):
            raise ValueError(
                "index_domain_matmul_many requires every pair to share the "
                "same Golden Dictionary fit (a, b, num_entries)"
            )

    results: List[Optional[IndexMatmulResult]] = [None] * len(pairs)
    if not isinstance(base, VectorizedIndexDomainEngine):
        for index, (resolved, (act, weights)) in enumerate(zip(engines, pairs)):
            values, stats = resolved.matmul(act, weights)
            results[index] = IndexMatmulResult(values=values, stats=stats)
        return results

    groups: Dict[Tuple[int, int, int], List[int]] = {}
    for index, (act, weights) in enumerate(pairs):
        _check_matmul_shapes(act, weights)
        groups.setdefault((act.shape[0], act.shape[1], weights.shape[1]), []).append(index)

    for indices in groups.values():
        if len(indices) == 1:
            only = indices[0]
            results[only] = engines[only].matmul(pairs[only][0], pairs[only][1])
            continue
        planes = [engines[i]._build_planes(pairs[i][0], pairs[i][1]) for i in indices]
        prods = engines[indices[0]]._batched_product(
            np.stack([p.lhs for p in planes]), np.stack([p.rhs for p in planes])
        )
        outlier_blocks = _batched_outlier_values(engines, pairs, indices, planes)
        for position, index in enumerate(indices):
            outlier = None if outlier_blocks is None else outlier_blocks[position]
            values = engines[index]._combine_values(planes[position], prods[position], outlier)
            stats, _ = engines[index]._stats_from_planes(planes[position])
            results[index] = IndexMatmulResult(values=values, stats=stats)
    return results


def _batched_outlier_values(
    engines: List[IndexDomainEngine],
    pairs,
    indices: List[int],
    planes: List[_IndicatorPlanes],
) -> Optional[np.ndarray]:
    """Batched masked outlier MACs for one same-shape group.

    Pairs without outliers contribute an exactly-zero mask product, so
    batching over the whole group is exact; skipped entirely (``None``)
    when no pair in the group holds outliers.
    """
    if not any(p.out_a.any() or p.out_w.any() for p in planes):
        return None
    dec_a, dec_w = [], []
    for position, index in enumerate(indices):
        act, weights = pairs[index]
        resolved, p = engines[index], planes[position]
        dec_a.append(
            resolved.act_dict.decode(act.encoded, apply_fixed_point=False).reshape(
                p.m_rows, p.k_len
            )
        )
        dec_w.append(
            resolved.weight_dict.decode(weights.encoded, apply_fixed_point=False).reshape(
                p.k_len, p.n_cols
            )
        )
    base = engines[indices[0]]
    first = base._batched_product(
        np.stack([d * p.out_a for d, p in zip(dec_a, planes)]), np.stack(dec_w)
    )
    second = base._batched_product(
        np.stack([d * p.g_a for d, p in zip(dec_a, planes)]),
        np.stack([d * p.out_w for d, p in zip(dec_w, planes)]),
    )
    return first + second


def vectorized_index_domain_matmul(
    activations: QuantizedTensor,
    weights: QuantizedTensor,
    per_row_stats: bool = False,
) -> IndexMatmulResult:
    """Vectorized index-domain matrix multiply (values + exact statistics)."""
    engine = VectorizedIndexDomainEngine(activations.dictionary, weights.dictionary)
    return engine.matmul(activations, weights, per_row_stats=per_row_stats)
