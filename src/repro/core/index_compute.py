"""Index-domain computation (paper Section II-D, Fig. 4, Eq. 3-6).

Because every Gaussian-encoded value has the form
``theta * (a**int + b) * s + m``, the dot product of an activation vector
with a weight vector decomposes into four families of terms:

* ``SoI``  — sum of ``a**(int_A + int_W)`` signed by ``theta_A * theta_W``,
  accumulated as a 15-entry signed histogram of exponent sums;
* ``SoA1`` / ``SoA2`` — sums of activation exponentials signed by the
  product sign / the activation sign alone (Eq. 4);
* ``SoW1`` / ``SoW2`` — the symmetric weight-side terms (Eq. 5);
* ``PoM1..4`` — the sign-count and constant terms (Eq. 6).

Pairs in which either operand is an outlier are excluded from the
histograms and handled by a direct multiply-accumulate on their 16-bit
centroids, exactly like the hardware's OPP unit.

Two engines implement the arithmetic:

* :class:`IndexDomainEngine` — the faithful scalar engine: one Python
  ``dot`` per output activation, histograms accumulated with
  ``np.add.at`` exactly as the GPE's counter register files do.  It is the
  correctness reference for the hardware model and for the vectorized
  engine, but a Python loop per output element makes it unusable at model
  scale (a single BERT-base GEMM holds ~10^5 outputs).
* :class:`VectorizedIndexDomainEngine` — computes whole GEMMs with NumPy
  array operations, ~100-1000x faster at layer shapes.

**The bincount / indicator-product formulation.**  The symbol alphabet is
tiny — 8 Gaussian magnitudes x sign plus up to 16 outlier centroids — so
every per-output histogram is a ``np.bincount`` of 4-bit symbols, and the
post-processing step only ever multiplies a histogram by fixed per-bin
weights (``a**bin`` for SoI, Eq. 3-6 constants for the rest).  Weighted
reduction commutes with accumulation: instead of materialising the
histogram of exponent sums and then reducing it, map every symbol to its
per-bin weight *first* (an 8-entry lookup table, i.e. an indicator matrix
``X`` with ``X[s, k] = [symbol_k == s]`` contracted against the weight
table) and let one matrix product accumulate all outputs of the GEMM at
once.  Concretely, with Gaussian masks ``g`` (1 where a value is not an
outlier), signs ``theta`` and exponent indexes ``i``:

    ``U = theta_A * a**i_A * g_A``, ``T = theta_A * g_A``, ``G = g_A``
    (each ``(M, K)``), and symmetrically ``V, R, H`` for the weights
    (each ``(K, N)``).  Then, for every output at once,

    ``sum_bins SoI_hist * a**bin  = U @ V``
    ``sum_bins SoA1_hist * a**bin = U @ R``   (and ``T @ V`` for SoW1)
    ``PoM1 counts                 = T @ R``   (sign-product counts)
    ``per-output Gaussian-pair counts = G @ H``

Because every ``U``-family product enters Eq. 3-6 alongside its
``b``-weighted ``T``-family partner, the implementation folds the offset
up front — ``P = U + b*T = theta * (a**i + b) * g`` (exactly the decoded
magnitude of the symbol) and ``Q = V + b*R`` — which merges the four
SoI/SoA1/SoW1/PoM1 products into the single block ``P @ Q``.  The four
remaining pairwise products of ``{P, G}`` x ``{Q, H}`` are what one
stacked ``(2M, K) @ (K, 2N)`` BLAS call produces together.  Outlier
pairs — the pairs masked *out* of the planes above — are handled by
masked direct MACs on the decoded 16-bit centroids, mirroring the OPP.
Operation statistics are exact integer counts derived from the indicator
planes alone, so the vectorized engine reports *identical*
:class:`IndexComputeStats` to the scalar engine (a property-test-locked
guarantee), while values agree to floating-point round-off.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.quantizer import QuantizedTensor
from repro.core.tensor_dictionary import EncodedValues, TensorDictionary

__all__ = [
    "IndexComputeStats",
    "IndexComputeResult",
    "IndexMatmulResult",
    "PlaneSet",
    "PlaneCache",
    "PlaneCacheStats",
    "get_plane_cache",
    "set_plane_cache",
    "use_plane_cache",
    "IndexDomainEngine",
    "VectorizedIndexDomainEngine",
    "TorchIndexDomainEngine",
    "ENGINE_BACKENDS",
    "ENGINE_DESCRIPTIONS",
    "available_engines",
    "resolve_engine",
    "make_engine",
    "index_domain_dot",
    "index_domain_matmul",
    "index_domain_matmul_many",
    "vectorized_index_domain_matmul",
]


@dataclass
class IndexComputeStats:
    """Operation counts of one index-domain dot product.

    These counts drive the accelerator energy model: the bulk of the work
    is narrow additions (index sums and counter updates) and the rare
    outlier pairs cost a full 16-bit MAC each.
    """

    gaussian_pairs: int = 0
    outlier_pairs: int = 0
    index_additions: int = 0
    counter_updates: int = 0
    post_processing_macs: int = 0

    @property
    def total_pairs(self) -> int:
        return self.gaussian_pairs + self.outlier_pairs

    @property
    def outlier_pair_fraction(self) -> float:
        total = self.total_pairs
        return self.outlier_pairs / total if total else 0.0

    def merge(self, other: "IndexComputeStats") -> "IndexComputeStats":
        """Accumulate another dot product's counts into this one."""
        self.gaussian_pairs += other.gaussian_pairs
        self.outlier_pairs += other.outlier_pairs
        self.index_additions += other.index_additions
        self.counter_updates += other.counter_updates
        self.post_processing_macs += other.post_processing_macs
        return self

    def scaled(self, factor: int) -> "IndexComputeStats":
        """The counts of ``factor`` identically-shaped repetitions.

        Exact for every count that depends on shape alone; models the
        repetitions' outlier pairs as matching this instance.  (The layer
        executor measures every head/batch instance directly; this is the
        cheap alternative for callers that extrapolate instead.)
        """
        return IndexComputeStats(
            gaussian_pairs=self.gaussian_pairs * factor,
            outlier_pairs=self.outlier_pairs * factor,
            index_additions=self.index_additions * factor,
            counter_updates=self.counter_updates * factor,
            post_processing_macs=self.post_processing_macs * factor,
        )

    def copy(self) -> "IndexComputeStats":
        return replace(self)


@dataclass
class IndexComputeResult:
    """Value and term breakdown of one index-domain dot product."""

    value: float
    soi: float
    soa1: float
    soa2: float
    sow1: float
    sow2: float
    pom: float
    outlier_contribution: float
    stats: IndexComputeStats

    def terms(self) -> Dict[str, float]:
        return {
            "SoI": self.soi,
            "SoA1": self.soa1,
            "SoA2": self.soa2,
            "SoW1": self.sow1,
            "SoW2": self.sow2,
            "PoM": self.pom,
            "outliers": self.outlier_contribution,
        }


@dataclass
class IndexMatmulResult:
    """Outcome of one vectorized index-domain matrix multiply.

    Attributes:
        values: The ``(M, N)`` numeric result.
        stats: Exact aggregate operation counts, identical to merging the
            scalar engine's per-output statistics.
        row_stats: Per-output-row statistics (requested via
            ``per_row_stats=True``); ``None`` otherwise.
    """

    values: np.ndarray
    stats: IndexComputeStats
    row_stats: Optional[List[IndexComputeStats]] = None


# --------------------------------------------------------------------------- #
# The cross-call plane cache
# --------------------------------------------------------------------------- #

@dataclass
class PlaneCacheStats:
    """Counters of the plane cache, a sibling of :class:`IndexComputeStats`.

    Attributes:
        hits: Digest-cache lookups that found the planes already built.
        misses: Digest-cache lookups that had to build the planes.
        attached_hits: Plane sets served from the operand tensor itself
            (the KV cache's incrementally grown slabs attach these).
        evictions: Entries dropped by the LRU byte budget.
        device_uploads: Plane arrays converted/uploaded by a device
            backend (the torch engine's one-time residency cost).
        device_reuses: Device-resident plane tensors reused without a
            conversion or transfer.
        entries: Entries currently resident in the digest cache.
        bytes_cached: Bytes currently held by the digest cache.
    """

    hits: int = 0
    misses: int = 0
    attached_hits: int = 0
    evictions: int = 0
    device_uploads: int = 0
    device_reuses: int = 0
    entries: int = 0
    bytes_cached: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of plane requests served without rebuilding planes."""
        served = self.hits + self.attached_hits
        total = served + self.misses
        return served / total if total else 0.0

    def minus(self, other: "PlaneCacheStats") -> "PlaneCacheStats":
        """The delta of the monotonic counters since ``other`` was taken.

        ``entries`` / ``bytes_cached`` are point-in-time gauges and keep
        this instance's (later) values.
        """
        return PlaneCacheStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            attached_hits=self.attached_hits - other.attached_hits,
            evictions=self.evictions - other.evictions,
            device_uploads=self.device_uploads - other.device_uploads,
            device_reuses=self.device_reuses - other.device_reuses,
            entries=self.entries,
            bytes_cached=self.bytes_cached,
        )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {f.name: int(getattr(self, f.name)) for f in fields(self)}
        data["hit_rate"] = float(self.hit_rate)
        return data


class PlaneSet:
    """The indicator planes of one operand in one GEMM role.

    ``role="lhs"`` holds the activation-side planes: ``p``/``g`` are the
    ``(M, K)`` symbol and Gaussian-indicator planes, :attr:`stacked` their
    ``(2M, K)`` row concatenation ``[P; G]``.  ``role="rhs"`` holds the
    weight-side planes: ``p``/``g`` are ``(K, N)``, :attr:`stacked` the
    ``(K, 2N)`` column concatenation ``[Q | H]``.  ``p`` and ``g`` are
    views into :attr:`stacked`, so one buffer feeds the stacked BLAS call
    directly.

    The decoded centroids (:attr:`dec`) and their masked variants —
    needed only when outlier pairs exist — materialise lazily and stay
    with the plane set, so a cached weight decodes once across every GEMM
    that touches it.  :attr:`device_tensors` is scratch space for device
    backends to pin uploaded copies (keyed ``(slot, device)``).
    """

    __slots__ = (
        "role",
        "fit_key",
        "plane_shape",
        "stacked",
        "p",
        "g",
        "out",
        "has_outliers",
        "gauss_per_k",
        "device_tensors",
        "_dec",
        "_dec_out",
        "_dec_gauss",
        "_encoded",
        "_dictionary",
        "_on_grow",
    )

    def __init__(
        self,
        p: np.ndarray,
        g: np.ndarray,
        out: np.ndarray,
        role: str,
        fit_key: Tuple[float, float, int],
        dictionary: Optional[TensorDictionary] = None,
        encoded: Optional[EncodedValues] = None,
        dec: Optional[np.ndarray] = None,
    ) -> None:
        if role not in ("lhs", "rhs"):
            raise ValueError(f"role must be 'lhs' or 'rhs', got {role!r}")
        self.role = role
        self.fit_key = fit_key
        self.plane_shape = tuple(out.shape)
        rows, cols = self.plane_shape
        axis = 0 if role == "lhs" else 1
        # C-contiguous everywhere: transposed/sliced sources may arrive
        # F-ordered, and a fixed layout keeps every BLAS call bitwise
        # reproducible regardless of how the planes were assembled.
        out = np.ascontiguousarray(out)
        stacked = np.concatenate([p, g], axis=axis)
        if role == "lhs":
            self.p, self.g = stacked[:rows], stacked[rows:]
        else:
            self.p, self.g = stacked[:, :cols], stacked[:, cols:]
        self.stacked = stacked
        self.out = out
        self.has_outliers = bool(out.any())
        self.gauss_per_k = (
            (~out).sum(axis=1, dtype=np.int64) if role == "rhs" else None
        )
        self.device_tensors: Dict[Tuple[str, str], Any] = {}
        self._dec = dec
        self._dec_out: Optional[np.ndarray] = None
        self._dec_gauss: Optional[np.ndarray] = None
        self._encoded = encoded
        self._dictionary = dictionary
        self._on_grow = None

    @property
    def dec(self) -> np.ndarray:
        """Decoded 16-bit centroids in the plane orientation (lazy)."""
        if self._dec is None:
            if self._dictionary is None or self._encoded is None:
                raise ValueError("plane set was built without a decode source")
            self._dec = np.ascontiguousarray(
                self._dictionary.decode(self._encoded, apply_fixed_point=False).reshape(
                    self.plane_shape
                )
            )
            self._grew(self._dec.nbytes)
        return self._dec

    @property
    def dec_out(self) -> np.ndarray:
        """``dec`` masked to the outlier entries (lazy)."""
        if self._dec_out is None:
            self._dec_out = self.dec * self.out
            self._grew(self._dec_out.nbytes)
        return self._dec_out

    @property
    def dec_gauss(self) -> np.ndarray:
        """``dec`` masked to the Gaussian entries (lazy)."""
        if self._dec_gauss is None:
            self._dec_gauss = self.dec * self.g
            self._grew(self._dec_gauss.nbytes)
        return self._dec_gauss

    def _grew(self, nbytes: int) -> None:
        if self._on_grow is not None:
            self._on_grow(int(nbytes))

    @property
    def nbytes(self) -> int:
        """Host bytes currently held (stacked + mask + materialised lazies)."""
        total = int(self.stacked.nbytes) + int(self.out.nbytes)
        for array in (self._dec, self._dec_out, self._dec_gauss):
            if array is not None:
                total += int(array.nbytes)
        return total


#: Default LRU budget of the process-wide plane cache, in megabytes.
#: Override with the ``REPRO_PLANE_CACHE_MB`` environment variable.
DEFAULT_PLANE_CACHE_MB = 4096.0


class PlaneCache:
    """Cross-call LRU cache of weight-side :class:`PlaneSet` artifacts.

    Keys are the operand's content digest (plus role), so an entry can
    never serve stale planes: a tensor with different encoded values or a
    different dictionary has a different digest *by construction* — there
    is no invalidation protocol to get wrong.  The byte budget covers the
    host plane arrays (stacked planes, outlier mask, lazily materialised
    decoded centroids); least-recently-used entries are dropped when the
    budget is exceeded, and any device-resident copies go with them.

    Thread-safe; counters are exposed as :class:`PlaneCacheStats`.
    """

    def __init__(self, max_bytes: Optional[int] = None) -> None:
        if max_bytes is None:
            megabytes = float(
                os.environ.get("REPRO_PLANE_CACHE_MB", DEFAULT_PLANE_CACHE_MB)
            )
            max_bytes = int(megabytes * 1024 * 1024)
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes!r}")
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[Tuple[str, str], PlaneSet]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.attached_hits = 0
        self.evictions = 0
        self.device_uploads = 0
        self.device_reuses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_cached(self) -> int:
        with self._lock:
            return self._bytes

    def get(self, key: Tuple[str, str]) -> Optional[PlaneSet]:
        """The cached plane set for ``key``, counting the hit or miss."""
        with self._lock:
            plane_set = self._entries.get(key)
            if plane_set is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return plane_set

    def put(self, key: Tuple[str, str], plane_set: PlaneSet) -> None:
        """Insert ``plane_set`` under ``key``, evicting LRU entries over budget."""
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= previous.nbytes
                previous._on_grow = None
            self._entries[key] = plane_set
            self._bytes += plane_set.nbytes
            plane_set._on_grow = self._grow
            self._evict_over_budget()

    def _grow(self, nbytes: int) -> None:
        """Account a cached entry's lazy materialisation (decoded centroids)."""
        with self._lock:
            self._bytes += nbytes
            self._evict_over_budget()

    def _evict_over_budget(self) -> None:
        # Caller holds the lock.  Evicting the newest entry too (when it
        # alone exceeds the budget) keeps the budget strict; the caller
        # still holds a reference and proceeds, the cache just stays cold.
        while self._bytes > self.max_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.nbytes
            evicted._on_grow = None
            self.evictions += 1

    def note_attached_hit(self) -> None:
        with self._lock:
            self.attached_hits += 1

    def note_device_upload(self) -> None:
        with self._lock:
            self.device_uploads += 1

    def note_device_reuse(self) -> None:
        with self._lock:
            self.device_reuses += 1

    def stats(self) -> PlaneCacheStats:
        """A snapshot of every counter (see :meth:`PlaneCacheStats.minus`)."""
        with self._lock:
            return PlaneCacheStats(
                hits=self.hits,
                misses=self.misses,
                attached_hits=self.attached_hits,
                evictions=self.evictions,
                device_uploads=self.device_uploads,
                device_reuses=self.device_reuses,
                entries=len(self._entries),
                bytes_cached=self._bytes,
            )

    def clear(self) -> None:
        """Drop every entry (counters keep their totals)."""
        with self._lock:
            for plane_set in self._entries.values():
                plane_set._on_grow = None
            self._entries.clear()
            self._bytes = 0


_PLANE_CACHE_LOCK = threading.Lock()
_PLANE_CACHE_UNSET = object()
_plane_cache: Any = _PLANE_CACHE_UNSET


def get_plane_cache() -> Optional[PlaneCache]:
    """The process-wide plane cache (``None`` when caching is disabled).

    Created lazily with the default budget on first use; swap or disable
    it with :func:`set_plane_cache` / :func:`use_plane_cache`.
    """
    global _plane_cache
    if _plane_cache is _PLANE_CACHE_UNSET:
        with _PLANE_CACHE_LOCK:
            if _plane_cache is _PLANE_CACHE_UNSET:
                _plane_cache = PlaneCache()
    return _plane_cache


def _swap_plane_cache(cache: Any) -> Any:
    global _plane_cache
    with _PLANE_CACHE_LOCK:
        previous = _plane_cache
        _plane_cache = cache
    return previous


def set_plane_cache(cache: Optional[PlaneCache]) -> Optional[PlaneCache]:
    """Install ``cache`` as the process-wide plane cache (``None`` disables).

    Returns the previously installed cache, if any.
    """
    previous = _swap_plane_cache(cache)
    return None if previous is _PLANE_CACHE_UNSET else previous


@contextmanager
def use_plane_cache(cache: Optional[PlaneCache]) -> Iterator[Optional[PlaneCache]]:
    """Scoped plane-cache override; ``None`` disables caching in the scope."""
    previous = _swap_plane_cache(cache)
    try:
        yield cache
    finally:
        _swap_plane_cache(previous)


class IndexDomainEngine:
    """Computes dot products directly on dictionary indexes (scalar reference).

    Args:
        activation_dictionary: Dictionary of the activation tensor.
        weight_dictionary: Dictionary of the weight tensor.

    Both dictionaries must be derived from the same Golden Dictionary so
    that they share the exponential base ``a`` and offset ``b``.
    """

    def __init__(
        self,
        activation_dictionary: TensorDictionary,
        weight_dictionary: TensorDictionary,
    ) -> None:
        fit_a = activation_dictionary.golden.fit
        fit_w = weight_dictionary.golden.fit
        if not np.isclose(fit_a.a, fit_w.a) or not np.isclose(fit_a.b, fit_w.b):
            raise ValueError(
                "activation and weight dictionaries must share the same Golden Dictionary"
            )
        self.act_dict = activation_dictionary
        self.weight_dict = weight_dictionary
        self.a = fit_a.a
        self.b = fit_a.b
        self.num_entries = fit_a.num_entries
        # Pre-computed bases a**k for every possible exponent sum (the values
        # the OPP multiplies the SoI histogram with during post-processing).
        self.soi_bases = self.a ** np.arange(2 * self.num_entries - 1, dtype=np.float64)
        self.half_bases = self.a ** np.arange(self.num_entries, dtype=np.float64)
        #: Golden-fit identity of the planes this engine builds; plane sets
        #: attached to tensors are only accepted when their fit matches.
        self._fit_key = (float(self.a), float(self.b), int(self.num_entries))

    @property
    def post_processing_macs_per_output(self) -> int:
        """Fixed post-processing MACs per output: one per SoI bin, one per
        SoA1/SoW1 bin, one for the PoM constants (outlier MACs add on top)."""
        return (2 * self.num_entries - 1) + 2 * self.num_entries + 1

    # ------------------------------------------------------------------ #
    # Scalar (per output activation) engine
    # ------------------------------------------------------------------ #
    def dot(
        self,
        activation: EncodedValues,
        weight: EncodedValues,
    ) -> IndexComputeResult:
        """Compute one output activation from encoded input vectors."""
        if activation.shape != weight.shape:
            raise ValueError("activation and weight vectors must have the same length")

        a, b = self.a, self.b
        s_a, m_a = self.act_dict.std, self.act_dict.mean
        s_w, m_w = self.weight_dict.std, self.weight_dict.mean

        theta_a = activation.sign.astype(np.float64).ravel()
        theta_w = weight.sign.astype(np.float64).ravel()
        idx_a = activation.gaussian_index.astype(np.int64).ravel()
        idx_w = weight.gaussian_index.astype(np.int64).ravel()
        outlier_pair = (activation.is_outlier | weight.is_outlier).ravel()
        gaussian_pair = ~outlier_pair

        n_gauss = int(gaussian_pair.sum())
        n_outlier = int(outlier_pair.sum())

        # --- Histogram accumulation (what the GPE's CRFs do) -------------- #
        product_sign = (theta_a * theta_w)[gaussian_pair]
        exp_sum = (idx_a + idx_w)[gaussian_pair]
        soi_hist = np.zeros(2 * self.num_entries - 1, dtype=np.float64)
        np.add.at(soi_hist, exp_sum, product_sign)

        soa1_hist = np.zeros(self.num_entries, dtype=np.float64)
        np.add.at(soa1_hist, idx_a[gaussian_pair], product_sign)
        sow1_hist = np.zeros(self.num_entries, dtype=np.float64)
        np.add.at(sow1_hist, idx_w[gaussian_pair], product_sign)
        pom1_count = float(product_sign.sum())

        # --- Post-processing: weighted reductions (Eq. 3-6) --------------- #
        soi = s_a * s_w * float(soi_hist @ self.soi_bases)
        soa1 = s_a * s_w * b * float(soa1_hist @ self.half_bases)
        sow1 = s_w * s_a * b * float(sow1_hist @ self.half_bases)

        # Activation-only and weight-only sums over the Gaussian pairs.
        sum_theta_a_exp = float((theta_a[gaussian_pair] * self.half_bases[idx_a[gaussian_pair]]).sum())
        sum_theta_w_exp = float((theta_w[gaussian_pair] * self.half_bases[idx_w[gaussian_pair]]).sum())
        sum_theta_a = float(theta_a[gaussian_pair].sum())
        sum_theta_w = float(theta_w[gaussian_pair].sum())

        soa2 = s_a * m_w * sum_theta_a_exp
        sow2 = s_w * m_a * sum_theta_w_exp
        pom = (
            s_a * s_w * b * b * pom1_count
            + s_a * m_w * b * sum_theta_a
            + s_w * m_a * b * sum_theta_w
            + n_gauss * m_a * m_w
        )

        # --- Outlier pairs: direct MAC on decoded 16-bit centroids -------- #
        outlier_contribution = 0.0
        if n_outlier:
            decoded_a = self.act_dict.decode(activation, apply_fixed_point=False).ravel()
            decoded_w = self.weight_dict.decode(weight, apply_fixed_point=False).ravel()
            outlier_contribution = float(
                (decoded_a[outlier_pair] * decoded_w[outlier_pair]).sum()
            )

        value = soi + soa1 + soa2 + sow1 + sow2 + pom + outlier_contribution

        stats = IndexComputeStats(
            gaussian_pairs=n_gauss,
            outlier_pairs=n_outlier,
            index_additions=n_gauss,
            # Each Gaussian pair updates the SoI, SoA1, SoW1 and PoM1 counters.
            counter_updates=4 * n_gauss,
            # Post-processing: one MAC per SoI bin + per SoA1/SoW1 bin + PoM,
            # plus one MAC per outlier pair in the OPP.
            post_processing_macs=self.post_processing_macs_per_output + n_outlier,
        )
        return IndexComputeResult(
            value=value,
            soi=soi,
            soa1=soa1,
            soa2=soa2,
            sow1=sow1,
            sow2=sow2,
            pom=pom,
            outlier_contribution=outlier_contribution,
            stats=stats,
        )

    # ------------------------------------------------------------------ #
    # Batched reference
    # ------------------------------------------------------------------ #
    def matmul(
        self,
        activations: QuantizedTensor,
        weights: QuantizedTensor,
    ) -> Tuple[np.ndarray, IndexComputeStats]:
        """Index-domain matrix multiply ``activations @ weights``.

        One scalar :meth:`dot` per output element; the row and column
        slices of both encodings are precomputed once (not per output), so
        the reference stays usable in larger equivalence tests.

        Args:
            activations: Quantized ``(M, K)`` activation matrix.
            weights: Quantized ``(K, N)`` weight matrix.

        Returns:
            The ``(M, N)`` result and the merged operation statistics.
        """
        m_rows, n_cols = _check_matmul_shapes(activations, weights)

        act_rows = _split_encoded(activations.encoded, activations.shape, axis=0)
        w_cols = _split_encoded(weights.encoded, weights.shape, axis=1)
        result = np.zeros((m_rows, n_cols), dtype=np.float64)
        stats = IndexComputeStats()
        for row, a_row in enumerate(act_rows):
            for col, w_col in enumerate(w_cols):
                out = self.dot(a_row, w_col)
                result[row, col] = out.value
                stats.merge(out.stats)
        return result, stats


@dataclass
class _IndicatorPlanes:
    """The per-GEMM indicator planes of the vectorized formulation.

    A pair of :class:`PlaneSet` artifacts — the ``(M, K)`` activation
    planes in the ``lhs`` role and the ``(K, N)`` weight planes in the
    ``rhs`` role.  Either side may come from the plane cache (or arrive
    pre-built on the operand tensor); the compatibility properties keep
    the plane names of the formulation (``p_a``/``g_a``/``q_w``/``h_w``).
    """

    act: PlaneSet
    wgt: PlaneSet

    @property
    def p_a(self) -> np.ndarray:
        return self.act.p

    @property
    def g_a(self) -> np.ndarray:
        return self.act.g

    @property
    def q_w(self) -> np.ndarray:
        return self.wgt.p

    @property
    def h_w(self) -> np.ndarray:
        return self.wgt.g

    @property
    def out_a(self) -> np.ndarray:
        return self.act.out

    @property
    def out_w(self) -> np.ndarray:
        return self.wgt.out

    @property
    def m_rows(self) -> int:
        return self.act.plane_shape[0]

    @property
    def k_len(self) -> int:
        return self.act.plane_shape[1]

    @property
    def n_cols(self) -> int:
        return self.wgt.plane_shape[1]

    @property
    def lhs(self) -> np.ndarray:
        """The stacked ``(2M, K)`` left operand: rows ``{P, G}``."""
        return self.act.stacked

    @property
    def rhs(self) -> np.ndarray:
        """The stacked ``(K, 2N)`` right operand: columns ``{Q, H}``."""
        return self.wgt.stacked


class VectorizedIndexDomainEngine(IndexDomainEngine):
    """Whole-GEMM index-domain compute via indicator-plane BLAS products.

    Implements the bincount / indicator-product formulation described in
    the module docstring: the nine cross products of the three activation
    planes against the three weight planes are evaluated by one stacked
    matrix multiply, outlier pairs by masked direct MACs on the decoded
    centroids.  Produces the same values as the scalar engine up to
    floating-point round-off and bit-identical operation statistics.

    The computation is staged so backends can swap the dense products
    without touching the formulation: :meth:`_build_planes` (NumPy),
    :meth:`_product` / :meth:`_batched_product` (the backend seam — the
    only floating-point GEMMs in the engine), then value combination and
    the exact integer statistics (NumPy again, derived from the indicator
    planes alone).  Any backend therefore reports *identical*
    :class:`IndexComputeStats` to this oracle by construction.
    """

    # ------------------------------------------------------------------ #
    # Backend seam: the only dense floating-point products in the engine
    # ------------------------------------------------------------------ #
    def _product(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """One dense ``(R, K) @ (K, C)`` product on this backend."""
        return lhs @ rhs

    def _batched_product(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """One batched ``(B, R, K) @ (B, K, C)`` product on this backend."""
        return np.matmul(lhs, rhs)

    def _plane_operand(self, plane_set: PlaneSet, slot: str, array: np.ndarray) -> Any:
        """Backend hook: may return a device-resident handle for ``array``.

        The NumPy oracle returns the host array unchanged; the torch
        backend pins cached plane arrays on its device (uploaded once,
        reused every GEMM that touches the plane set).
        """
        return array

    # ------------------------------------------------------------------ #
    # Stages of the indicator-plane formulation
    # ------------------------------------------------------------------ #
    def _build_plane_set(
        self,
        tensor: QuantizedTensor,
        role: str,
        shape: Tuple[int, int],
        dictionary: TensorDictionary,
    ) -> PlaneSet:
        """Build one operand's planes elementwise (always NumPy).

        The symbol-mapped exponential plane ``P = theta * (a**i + b)``
        masked to Gaussian entries (folding the offset b up front merges
        the SoI/SoA1/SoW1/PoM1 products into a single block:
        ``P @ Q = U@V + b*(U@R + T@V) + b^2 * T@R``), plus the Gaussian
        indicator plane ``G``.
        """
        encoded = tensor.encoded
        out = encoded.is_outlier.reshape(shape)
        g = (~out).astype(np.float64)
        p = (
            encoded.sign.reshape(shape).astype(np.float64)
            * (self.half_bases[encoded.gaussian_index.reshape(shape)] + self.b)
            * g
        )
        return PlaneSet(
            p=p,
            g=g,
            out=out,
            role=role,
            fit_key=self._fit_key,
            dictionary=dictionary,
            encoded=encoded,
        )

    def _plane_set(
        self, tensor: QuantizedTensor, role: str, shape: Tuple[int, int]
    ) -> PlaneSet:
        """Resolve one operand's planes: attached → digest cache → build.

        An operand carrying pre-built planes (``tensor._plane_sets`` — the
        KV cache's incremental slabs) wins when its fit and shape match.
        Otherwise the weight (``rhs``) role consults the process plane
        cache keyed by the tensor's content digest; activations are built
        fresh (they change every call, hashing them would only add cost).
        """
        cache = get_plane_cache()
        attached = getattr(tensor, "_plane_sets", None)
        if attached is not None:
            candidate = attached.get(role)
            if (
                candidate is not None
                and candidate.fit_key == self._fit_key
                and candidate.plane_shape == tuple(shape)
            ):
                if cache is not None:
                    cache.note_attached_hit()
                return candidate
        dictionary = self.act_dict if role == "lhs" else self.weight_dict
        if cache is not None and role == "rhs":
            key = (tensor.content_digest(), role)
            cached = cache.get(key)
            if cached is not None:
                return cached
            built = self._build_plane_set(tensor, role, shape, dictionary)
            cache.put(key, built)
            return built
        return self._build_plane_set(tensor, role, shape, dictionary)

    def _build_planes(
        self, activations: QuantizedTensor, weights: QuantizedTensor
    ) -> _IndicatorPlanes:
        """Indicator planes of one GEMM, each side resolved through the cache."""
        m_rows, n_cols = _check_matmul_shapes(activations, weights)
        k_len = activations.shape[1]
        return _IndicatorPlanes(
            act=self._plane_set(activations, "lhs", (m_rows, k_len)),
            wgt=self._plane_set(weights, "rhs", (k_len, n_cols)),
        )

    def _stacked_product(self, planes: _IndicatorPlanes) -> np.ndarray:
        """The ``(2M, 2N)`` stacked plane product, rhs possibly device-resident."""
        rhs = self._plane_operand(planes.wgt, "stacked", planes.wgt.stacked)
        return self._product(planes.act.stacked, rhs)

    def _outlier_values(
        self,
        activations: QuantizedTensor,
        weights: QuantizedTensor,
        planes: _IndicatorPlanes,
    ) -> Optional[np.ndarray]:
        """Masked direct MACs on the decoded 16-bit centroids (the OPP).

        ``(A outlier, any W)`` plus ``(A Gaussian, W outlier)`` covers
        every pair in which either operand is an outlier, exactly once.
        Returns ``None`` when no operand holds outliers.  The decoded
        centroids live on the plane sets, so a cached weight decodes once
        across every GEMM that touches it.
        """
        act, wgt = planes.act, planes.wgt
        if not (act.has_outliers or wgt.has_outliers):
            return None
        contribution: Optional[np.ndarray] = None
        if act.has_outliers:
            contribution = self._product(
                act.dec_out, self._plane_operand(wgt, "dec", wgt.dec)
            )
        if wgt.has_outliers:
            second = self._product(
                act.dec_gauss, self._plane_operand(wgt, "dec_out", wgt.dec_out)
            )
            contribution = second if contribution is None else contribution + second
        return contribution

    def _combine_values(
        self,
        planes: _IndicatorPlanes,
        prod: np.ndarray,
        outlier_values: Optional[np.ndarray],
    ) -> np.ndarray:
        """Eq. 3-6 per output, all at once, from the stacked plane product.

        ``prod`` is the ``(2M, 2N)`` product of :attr:`_IndicatorPlanes.lhs`
        with :attr:`_IndicatorPlanes.rhs`: the SoI + SoA1 + SoW1 + PoM1
        family (``P @ Q``), the SoA2/PoM2 family (``P @ H``), the
        SoW2/PoM3 family (``G @ Q``) and the constant PoM4 term
        (``G @ H``).
        """
        M, N = planes.m_rows, planes.n_cols
        s_a, m_a = self.act_dict.std, self.act_dict.mean
        s_w, m_w = self.weight_dict.std, self.weight_dict.mean
        pq, ph = prod[:M, :N], prod[:M, N:]
        gq, gh = prod[M:, :N], prod[M:, N:]
        values = s_a * s_w * pq + s_a * m_w * ph + s_w * m_a * gq + m_a * m_w * gh
        if outlier_values is not None:
            values = values + outlier_values
        return values

    def _stats_from_planes(
        self, planes: _IndicatorPlanes, per_row_stats: bool = False
    ) -> Tuple[IndexComputeStats, Optional[List[IndexComputeStats]]]:
        """Exact integer statistics from the indicator planes alone.

        The Gaussian pair count of output ``(m, n)`` is ``(G @ H)[m, n]``;
        summing over ``n`` first keeps the count computation
        ``O(MK + KN)``.  Always NumPy integer arithmetic, so every
        backend reports identical counts.
        """
        m_rows, n_cols, k_len = planes.m_rows, planes.n_cols, planes.k_len
        gauss_a_int = (~planes.act.out).astype(np.int64)
        w_gauss_per_k = planes.wgt.gauss_per_k  # (K,) — cached on the plane set
        gaussian_per_row = gauss_a_int @ w_gauss_per_k  # (M,)
        pairs_per_row = n_cols * k_len
        gaussian_total = int(gaussian_per_row.sum())
        outlier_total = m_rows * pairs_per_row - gaussian_total

        fixed_macs = self.post_processing_macs_per_output
        stats = IndexComputeStats(
            gaussian_pairs=gaussian_total,
            outlier_pairs=outlier_total,
            index_additions=gaussian_total,
            counter_updates=4 * gaussian_total,
            post_processing_macs=m_rows * n_cols * fixed_macs + outlier_total,
        )

        row_stats: Optional[List[IndexComputeStats]] = None
        if per_row_stats:
            row_stats = []
            for row in range(m_rows):
                gauss = int(gaussian_per_row[row])
                outlier = pairs_per_row - gauss
                row_stats.append(
                    IndexComputeStats(
                        gaussian_pairs=gauss,
                        outlier_pairs=outlier,
                        index_additions=gauss,
                        counter_updates=4 * gauss,
                        post_processing_macs=n_cols * fixed_macs + outlier,
                    )
                )
        return stats, row_stats

    def matmul(  # type: ignore[override]
        self,
        activations: QuantizedTensor,
        weights: QuantizedTensor,
        per_row_stats: bool = False,
    ) -> "IndexMatmulResult":
        """Vectorized index-domain matrix multiply ``activations @ weights``.

        Args:
            activations: Quantized ``(M, K)`` activation matrix.
            weights: Quantized ``(K, N)`` weight matrix.
            per_row_stats: Also return one :class:`IndexComputeStats` per
                output row (the accelerator's per-output-tile view).

        Returns:
            An :class:`IndexMatmulResult` with the ``(M, N)`` values and
            exact aggregate (and optionally per-row) statistics.
        """
        planes = self._build_planes(activations, weights)
        # One stacked backend call yields the four plane products:
        # rows {P, G} x cols {Q, H}.
        prod = self._stacked_product(planes)
        outlier_values = self._outlier_values(activations, weights, planes)
        values = self._combine_values(planes, prod, outlier_values)
        stats, row_stats = self._stats_from_planes(planes, per_row_stats)
        return IndexMatmulResult(values=values, stats=stats, row_stats=row_stats)


def _import_torch():
    """Import torch lazily, with an actionable error when absent."""
    try:
        import torch
    except ImportError as exc:  # pragma: no cover - exercised via mock in tests
        raise ImportError(
            "the 'torch' index-domain engine requires the optional torch "
            "dependency, which is not installed; install torch (CPU wheels "
            "suffice) or use engine='vectorized', the NumPy oracle"
        ) from exc
    return torch


class TorchIndexDomainEngine(VectorizedIndexDomainEngine):
    """Indicator-plane engine with the dense products on ``torch.einsum``.

    Plane construction, value combination and the integer statistics stay
    on NumPy — so this backend reports :class:`IndexComputeStats`
    *identical* to the vectorized oracle by construction — while every
    dense product (the stacked plane GEMM, batched group GEMMs and the
    outlier MAC matmuls) runs through ``torch.einsum`` in float64 on
    ``device``.  Values agree with the oracle to floating-point
    round-off.

    Args:
        activation_dictionary: Dictionary of the activation tensor.
        weight_dictionary: Dictionary of the weight tensor.
        device: Torch device string (``"cpu"``, ``"cuda"``, ...).
            Defaults to CUDA when available, else CPU.

    Raises:
        ImportError: When torch is not installed (the import is deferred
            to construction so environments without torch can still use
            every NumPy engine).
    """

    @staticmethod
    def ensure_available() -> None:
        """Raise the actionable ImportError now if torch is missing.

        Executors call this once at construction so a missing backend
        fails fast instead of at the first GEMM.
        """
        _import_torch()

    def __init__(
        self,
        activation_dictionary: TensorDictionary,
        weight_dictionary: TensorDictionary,
        device: Optional[str] = None,
    ) -> None:
        super().__init__(activation_dictionary, weight_dictionary)
        self._torch = _import_torch()
        if device is None:
            device = "cuda" if self._torch.cuda.is_available() else "cpu"
        self.device = str(device)

    def _tensor(self, array: np.ndarray):
        return self._torch.as_tensor(
            np.ascontiguousarray(array), dtype=self._torch.float64
        ).to(self.device)

    def _as_device(self, value: Any):
        """Accept either a host ndarray or an already-resident tensor."""
        if isinstance(value, np.ndarray):
            return self._tensor(value)
        return value

    def _plane_operand(self, plane_set: PlaneSet, slot: str, array: np.ndarray) -> Any:
        """Pin cached plane arrays on the device, uploaded once per slot.

        The handle lives on the :class:`PlaneSet`, so any engine instance
        targeting the same device reuses it — engines are constructed
        fresh per GEMM, the plane sets are what persist.
        """
        key = (slot, self.device)
        resident = plane_set.device_tensors.get(key)
        cache = get_plane_cache()
        if resident is None:
            resident = self._tensor(array)
            plane_set.device_tensors[key] = resident
            if cache is not None:
                cache.note_device_upload()
        elif cache is not None:
            cache.note_device_reuse()
        return resident

    def _product(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        out = self._torch.einsum("mk,kn->mn", self._as_device(lhs), self._as_device(rhs))
        return out.cpu().numpy()

    def _batched_product(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        out = self._torch.einsum(
            "bmk,bkn->bmn", self._as_device(lhs), self._as_device(rhs)
        )
        return out.cpu().numpy()


# --------------------------------------------------------------------------- #
# Engine dispatch
# --------------------------------------------------------------------------- #

#: Backing mapping of the ``"engines"`` registry (:mod:`repro.registry`):
#: engine name → engine class.  A live view — backends registered through
#: the registry are immediately selectable by every ``engine=`` switch.
ENGINE_BACKENDS: Dict[str, type] = {
    "scalar": IndexDomainEngine,
    "vectorized": VectorizedIndexDomainEngine,
    "torch": TorchIndexDomainEngine,
}

#: One-line descriptions for ``repro registry list``.  Static strings on
#: purpose: describing the torch backend must not import torch.
ENGINE_DESCRIPTIONS: Dict[str, str] = {
    "scalar": "faithful per-output reference engine (np.add.at histograms; tests only)",
    "vectorized": "whole-GEMM NumPy indicator-plane BLAS engine — the correctness oracle",
    "torch": "optional torch einsum backend (CPU/GPU) — identical stats to the oracle",
}


def available_engines() -> Tuple[str, ...]:
    """All registered engine names, sorted."""
    return tuple(sorted(ENGINE_BACKENDS))


def resolve_engine(engine: str) -> type:
    """Engine name → engine class, with registry did-you-mean errors.

    Raises:
        RegistryError: (a ``ValueError``) when the name is unknown, naming
            the nearest registered engine when one is close.
    """
    # Lazy import: repro.registry imports this module at load time to wrap
    # ENGINE_BACKENDS; reaching back only inside the function keeps the
    # modules acyclic.
    from repro.registry import ENGINES

    return ENGINES.get(engine)


def make_engine(
    engine,
    activation_dictionary: TensorDictionary,
    weight_dictionary: TensorDictionary,
    device: Optional[str] = None,
) -> IndexDomainEngine:
    """Instantiate an engine by name (or class) for one dictionary pair.

    Args:
        engine: Registered engine name (``"vectorized"``, ``"scalar"``,
            ``"torch"``) or an engine class.
        activation_dictionary: Dictionary of the activation tensor.
        weight_dictionary: Dictionary of the weight tensor.
        device: Optional device for backends that take one (the torch
            engine); passing a device to a backend that does not accept
            it raises ``TypeError``.
    """
    cls = resolve_engine(engine) if isinstance(engine, str) else engine
    if device is not None:
        return cls(activation_dictionary, weight_dictionary, device=device)
    return cls(activation_dictionary, weight_dictionary)


def _check_matmul_shapes(
    activations: QuantizedTensor, weights: QuantizedTensor
) -> Tuple[int, int]:
    """Validate ``(M, K) @ (K, N)`` operands, returning ``(M, N)``."""
    if len(activations.shape) != 2 or len(weights.shape) != 2:
        raise ValueError("matmul expects 2-D quantized tensors")
    m_rows, k_a = activations.shape
    k_w, n_cols = weights.shape
    if k_a != k_w:
        raise ValueError("inner dimensions do not match")
    return m_rows, n_cols


def _split_encoded(
    encoded: EncodedValues, shape: Tuple[int, ...], axis: int
) -> List[EncodedValues]:
    """All rows (axis=0) or columns (axis=1) of a 2-D encoding.

    Reshapes each field exactly once and returns views, so slicing is
    O(M + N) instead of re-reshaping the full encoding per output element.
    """
    fields = (
        encoded.is_outlier.reshape(shape),
        encoded.sign.reshape(shape),
        encoded.gaussian_index.reshape(shape),
        encoded.outlier_index.reshape(shape),
    )
    count = shape[0] if axis == 0 else shape[1]
    return [
        EncodedValues(
            *(
                (matrix[index, :] if axis == 0 else matrix[:, index])
                for matrix in fields
            )
        )
        for index in range(count)
    ]


def _slice_encoded(
    encoded: EncodedValues, shape: Tuple[int, ...], index: int, axis: int
) -> EncodedValues:
    """Extract one row (axis=0) or column (axis=1) of a 2-D encoding."""

    def pick(array: np.ndarray) -> np.ndarray:
        matrix = array.reshape(shape)
        return matrix[index, :] if axis == 0 else matrix[:, index]

    return EncodedValues(
        is_outlier=pick(encoded.is_outlier),
        sign=pick(encoded.sign),
        gaussian_index=pick(encoded.gaussian_index),
        outlier_index=pick(encoded.outlier_index),
    )


def index_domain_dot(
    activations: QuantizedTensor, weights: QuantizedTensor
) -> IndexComputeResult:
    """Dot product of two 1-D quantized tensors in the index domain."""
    engine = IndexDomainEngine(activations.dictionary, weights.dictionary)
    return engine.dot(activations.encoded, weights.encoded)


def index_domain_matmul(
    activations: QuantizedTensor,
    weights: QuantizedTensor,
    engine: str = "vectorized",
    device: Optional[str] = None,
) -> Tuple[np.ndarray, IndexComputeStats]:
    """Matrix multiply of quantized tensors in the index domain.

    Args:
        activations: Quantized ``(M, K)`` activation matrix.
        weights: Quantized ``(K, N)`` weight matrix.
        engine: Registered engine name — ``"vectorized"`` (default;
            whole-GEMM NumPy array ops), ``"torch"`` (optional einsum
            backend) or ``"scalar"`` (the faithful per-output reference).
            Unknown names raise a registry error with a did-you-mean
            suggestion.
        device: Optional device for backends that take one.
    """
    resolved = make_engine(engine, activations.dictionary, weights.dictionary, device=device)
    out = resolved.matmul(activations, weights)
    if isinstance(out, IndexMatmulResult):
        return out.values, out.stats
    return out


def index_domain_matmul_many(
    pairs,
    engine: str = "vectorized",
    device: Optional[str] = None,
) -> List[IndexMatmulResult]:
    """Run many index-domain GEMMs, batching same-shape products.

    The per-head attention GEMMs of a layer — and the same projection
    GEMMs across a model's layers — share one ``(M, K, N)`` shape, so
    their stacked indicator-plane products can be evaluated by a single
    batched BLAS (or torch ``bmm``) call instead of one call per GEMM.
    This function groups ``pairs`` by shape and does exactly that; the
    per-pair scale combination, outlier MACs and exact integer statistics
    are unchanged, so every returned :class:`IndexMatmulResult` carries
    statistics *identical* to a per-GEMM :func:`index_domain_matmul` run
    (values agree to floating-point round-off).

    Args:
        pairs: Sequence of ``(activations, weights)`` quantized 2-D
            tensor pairs.  Per-pair dictionaries may differ (each tensor
            keeps its own std/mean scales), but all must derive from the
            same Golden Dictionary fit.
        engine: Registered engine name; the scalar reference has no
            batched path and falls back to per-pair execution.
        device: Optional device for backends that take one.

    Returns:
        One :class:`IndexMatmulResult` per input pair, in input order.
    """
    pairs = list(pairs)
    if not pairs:
        return []
    engines = [
        make_engine(engine, act.dictionary, weights.dictionary, device=device)
        for act, weights in pairs
    ]
    base = engines[0]
    for other in engines[1:]:
        if (
            not np.isclose(other.a, base.a)
            or not np.isclose(other.b, base.b)
            or other.num_entries != base.num_entries
        ):
            raise ValueError(
                "index_domain_matmul_many requires every pair to share the "
                "same Golden Dictionary fit (a, b, num_entries)"
            )

    results: List[Optional[IndexMatmulResult]] = [None] * len(pairs)
    if not isinstance(base, VectorizedIndexDomainEngine):
        for index, (resolved, (act, weights)) in enumerate(zip(engines, pairs)):
            values, stats = resolved.matmul(act, weights)
            results[index] = IndexMatmulResult(values=values, stats=stats)
        return results

    groups: Dict[Tuple[int, int, int], List[int]] = {}
    for index, (act, weights) in enumerate(pairs):
        _check_matmul_shapes(act, weights)
        groups.setdefault((act.shape[0], act.shape[1], weights.shape[1]), []).append(index)

    for shape_indices in groups.values():
        if len(shape_indices) == 1:
            only = shape_indices[0]
            results[only] = engines[only].matmul(pairs[only][0], pairs[only][1])
            continue
        # Partition by weight *object* identity: pairs sharing one weight
        # tensor (per-head decode GEMMs across serving streams) collapse
        # to a single row-concatenated GEMM against that weight's planes.
        # The partition depends only on the input pairs — never on cache
        # state — so cached and uncached runs take identical code paths.
        shared: Dict[int, List[int]] = {}
        for i in shape_indices:
            shared.setdefault(id(pairs[i][1]), []).append(i)
        singles: List[int] = []
        for sub in shared.values():
            if len(sub) >= 2:
                _shared_rhs_group(engines, pairs, sub, results)
            else:
                singles.extend(sub)
        if not singles:
            continue
        if len(singles) == 1:
            only = singles[0]
            results[only] = engines[only].matmul(pairs[only][0], pairs[only][1])
            continue
        indices = singles
        planes = [engines[i]._build_planes(pairs[i][0], pairs[i][1]) for i in indices]
        prods = engines[indices[0]]._batched_product(
            np.stack([p.lhs for p in planes]), np.stack([p.rhs for p in planes])
        )
        outlier_blocks = _batched_outlier_values(engines[indices[0]], planes)
        for position, index in enumerate(indices):
            outlier = None if outlier_blocks is None else outlier_blocks[position]
            values = engines[index]._combine_values(planes[position], prods[position], outlier)
            stats, _ = engines[index]._stats_from_planes(planes[position])
            results[index] = IndexMatmulResult(values=values, stats=stats)
    return results


def _batched_outlier_values(
    base: "VectorizedIndexDomainEngine",
    planes: List[_IndicatorPlanes],
) -> Optional[np.ndarray]:
    """Batched masked outlier MACs for one same-shape group.

    Pairs without outliers contribute an exactly-zero mask product, so
    batching over the whole group is exact; skipped entirely (``None``)
    when no pair in the group holds outliers.  Decoded centroids come
    from the plane sets, so cached weights decode once per process.
    """
    if not any(p.act.has_outliers or p.wgt.has_outliers for p in planes):
        return None
    first = base._batched_product(
        np.stack([p.act.dec_out for p in planes]),
        np.stack([p.wgt.dec for p in planes]),
    )
    second = base._batched_product(
        np.stack([p.act.dec_gauss for p in planes]),
        np.stack([p.wgt.dec_out for p in planes]),
    )
    return first + second


def _shared_rhs_group(
    engines: List[IndexDomainEngine],
    pairs,
    indices: List[int],
    results: List[Optional[IndexMatmulResult]],
) -> None:
    """One GEMM for a same-shape subgroup sharing one weight tensor object.

    The stacked lhs planes of every pair are row-concatenated against the
    single shared rhs plane set, so S streams hitting the same weight
    slice cost one BLAS call instead of S.  Row-slicing the concatenated
    product is exact — GEMM output rows are independent.
    """
    base = engines[indices[0]]
    planes = [engines[i]._build_planes(pairs[i][0], pairs[i][1]) for i in indices]
    wgt = planes[0].wgt
    lhs = np.concatenate([p.act.stacked for p in planes], axis=0)
    prod_cat = base._product(lhs, base._plane_operand(wgt, "stacked", wgt.stacked))
    out_cat = None
    if any(p.act.has_outliers for p in planes):
        out_cat = base._product(
            np.concatenate([p.act.dec_out for p in planes], axis=0),
            base._plane_operand(wgt, "dec", wgt.dec),
        )
    out2_cat = None
    if wgt.has_outliers:
        out2_cat = base._product(
            np.concatenate([p.act.dec_gauss for p in planes], axis=0),
            base._plane_operand(wgt, "dec_out", wgt.dec_out),
        )
    row = 0
    mrow = 0
    for p, index in zip(planes, indices):
        rows = p.m_rows
        prod = prod_cat[row : row + 2 * rows]
        outlier = None
        if out_cat is not None:
            outlier = out_cat[mrow : mrow + rows]
        if out2_cat is not None:
            second = out2_cat[mrow : mrow + rows]
            outlier = second if outlier is None else outlier + second
        row += 2 * rows
        mrow += rows
        values = engines[index]._combine_values(p, prod, outlier)
        stats, _ = engines[index]._stats_from_planes(p)
        results[index] = IndexMatmulResult(values=values, stats=stats)


def vectorized_index_domain_matmul(
    activations: QuantizedTensor,
    weights: QuantizedTensor,
    per_row_stats: bool = False,
) -> IndexMatmulResult:
    """Vectorized index-domain matrix multiply (values + exact statistics)."""
    engine = VectorizedIndexDomainEngine(activations.dictionary, weights.dictionary)
    return engine.matmul(activations, weights, per_row_stats=per_row_stats)
