"""Index-domain computation (paper Section II-D, Fig. 4, Eq. 3-6).

Because every Gaussian-encoded value has the form
``theta * (a**int + b) * s + m``, the dot product of an activation vector
with a weight vector decomposes into four families of terms:

* ``SoI``  — sum of ``a**(int_A + int_W)`` signed by ``theta_A * theta_W``,
  accumulated as a 15-entry signed histogram of exponent sums;
* ``SoA1`` / ``SoA2`` — sums of activation exponentials signed by the
  product sign / the activation sign alone (Eq. 4);
* ``SoW1`` / ``SoW2`` — the symmetric weight-side terms (Eq. 5);
* ``PoM1..4`` — the sign-count and constant terms (Eq. 6).

Pairs in which either operand is an outlier are excluded from the
histograms and handled by a direct multiply-accumulate on their 16-bit
centroids, exactly like the hardware's OPP unit.

The module provides both a faithful scalar engine used by the correctness
tests and hardware model, and batched helpers used by the accelerator
simulator to count operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.quantizer import QuantizedTensor
from repro.core.tensor_dictionary import EncodedValues, TensorDictionary

__all__ = [
    "IndexComputeStats",
    "IndexComputeResult",
    "IndexDomainEngine",
    "index_domain_dot",
    "index_domain_matmul",
]


@dataclass
class IndexComputeStats:
    """Operation counts of one index-domain dot product.

    These counts drive the accelerator energy model: the bulk of the work
    is narrow additions (index sums and counter updates) and the rare
    outlier pairs cost a full 16-bit MAC each.
    """

    gaussian_pairs: int = 0
    outlier_pairs: int = 0
    index_additions: int = 0
    counter_updates: int = 0
    post_processing_macs: int = 0

    @property
    def total_pairs(self) -> int:
        return self.gaussian_pairs + self.outlier_pairs

    @property
    def outlier_pair_fraction(self) -> float:
        total = self.total_pairs
        return self.outlier_pairs / total if total else 0.0

    def merge(self, other: "IndexComputeStats") -> "IndexComputeStats":
        """Accumulate another dot product's counts into this one."""
        self.gaussian_pairs += other.gaussian_pairs
        self.outlier_pairs += other.outlier_pairs
        self.index_additions += other.index_additions
        self.counter_updates += other.counter_updates
        self.post_processing_macs += other.post_processing_macs
        return self


@dataclass
class IndexComputeResult:
    """Value and term breakdown of one index-domain dot product."""

    value: float
    soi: float
    soa1: float
    soa2: float
    sow1: float
    sow2: float
    pom: float
    outlier_contribution: float
    stats: IndexComputeStats

    def terms(self) -> Dict[str, float]:
        return {
            "SoI": self.soi,
            "SoA1": self.soa1,
            "SoA2": self.soa2,
            "SoW1": self.sow1,
            "SoW2": self.sow2,
            "PoM": self.pom,
            "outliers": self.outlier_contribution,
        }


class IndexDomainEngine:
    """Computes dot products directly on dictionary indexes.

    Args:
        activation_dictionary: Dictionary of the activation tensor.
        weight_dictionary: Dictionary of the weight tensor.

    Both dictionaries must be derived from the same Golden Dictionary so
    that they share the exponential base ``a`` and offset ``b``.
    """

    def __init__(
        self,
        activation_dictionary: TensorDictionary,
        weight_dictionary: TensorDictionary,
    ) -> None:
        fit_a = activation_dictionary.golden.fit
        fit_w = weight_dictionary.golden.fit
        if not np.isclose(fit_a.a, fit_w.a) or not np.isclose(fit_a.b, fit_w.b):
            raise ValueError(
                "activation and weight dictionaries must share the same Golden Dictionary"
            )
        self.act_dict = activation_dictionary
        self.weight_dict = weight_dictionary
        self.a = fit_a.a
        self.b = fit_a.b
        self.num_entries = fit_a.num_entries
        # Pre-computed bases a**k for every possible exponent sum (the values
        # the OPP multiplies the SoI histogram with during post-processing).
        self.soi_bases = self.a ** np.arange(2 * self.num_entries - 1, dtype=np.float64)
        self.half_bases = self.a ** np.arange(self.num_entries, dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Scalar (per output activation) engine
    # ------------------------------------------------------------------ #
    def dot(
        self,
        activation: EncodedValues,
        weight: EncodedValues,
    ) -> IndexComputeResult:
        """Compute one output activation from encoded input vectors."""
        if activation.shape != weight.shape:
            raise ValueError("activation and weight vectors must have the same length")

        a, b = self.a, self.b
        s_a, m_a = self.act_dict.std, self.act_dict.mean
        s_w, m_w = self.weight_dict.std, self.weight_dict.mean

        theta_a = activation.sign.astype(np.float64).ravel()
        theta_w = weight.sign.astype(np.float64).ravel()
        idx_a = activation.gaussian_index.astype(np.int64).ravel()
        idx_w = weight.gaussian_index.astype(np.int64).ravel()
        outlier_pair = (activation.is_outlier | weight.is_outlier).ravel()
        gaussian_pair = ~outlier_pair

        n_gauss = int(gaussian_pair.sum())
        n_outlier = int(outlier_pair.sum())

        # --- Histogram accumulation (what the GPE's CRFs do) -------------- #
        product_sign = (theta_a * theta_w)[gaussian_pair]
        exp_sum = (idx_a + idx_w)[gaussian_pair]
        soi_hist = np.zeros(2 * self.num_entries - 1, dtype=np.float64)
        np.add.at(soi_hist, exp_sum, product_sign)

        soa1_hist = np.zeros(self.num_entries, dtype=np.float64)
        np.add.at(soa1_hist, idx_a[gaussian_pair], product_sign)
        sow1_hist = np.zeros(self.num_entries, dtype=np.float64)
        np.add.at(sow1_hist, idx_w[gaussian_pair], product_sign)
        pom1_count = float(product_sign.sum())

        # --- Post-processing: weighted reductions (Eq. 3-6) --------------- #
        soi = s_a * s_w * float(soi_hist @ self.soi_bases)
        soa1 = s_a * s_w * b * float(soa1_hist @ self.half_bases)
        sow1 = s_w * s_a * b * float(sow1_hist @ self.half_bases)

        # Activation-only and weight-only sums over the Gaussian pairs.
        sum_theta_a_exp = float((theta_a[gaussian_pair] * self.half_bases[idx_a[gaussian_pair]]).sum())
        sum_theta_w_exp = float((theta_w[gaussian_pair] * self.half_bases[idx_w[gaussian_pair]]).sum())
        sum_theta_a = float(theta_a[gaussian_pair].sum())
        sum_theta_w = float(theta_w[gaussian_pair].sum())

        soa2 = s_a * m_w * sum_theta_a_exp
        sow2 = s_w * m_a * sum_theta_w_exp
        pom = (
            s_a * s_w * b * b * pom1_count
            + s_a * m_w * b * sum_theta_a
            + s_w * m_a * b * sum_theta_w
            + n_gauss * m_a * m_w
        )

        # --- Outlier pairs: direct MAC on decoded 16-bit centroids -------- #
        outlier_contribution = 0.0
        if n_outlier:
            decoded_a = self.act_dict.decode(activation, apply_fixed_point=False).ravel()
            decoded_w = self.weight_dict.decode(weight, apply_fixed_point=False).ravel()
            outlier_contribution = float(
                (decoded_a[outlier_pair] * decoded_w[outlier_pair]).sum()
            )

        value = soi + soa1 + soa2 + sow1 + sow2 + pom + outlier_contribution

        stats = IndexComputeStats(
            gaussian_pairs=n_gauss,
            outlier_pairs=n_outlier,
            index_additions=n_gauss,
            # Each Gaussian pair updates the SoI, SoA1, SoW1 and PoM1 counters.
            counter_updates=4 * n_gauss,
            # Post-processing: one MAC per SoI bin + per SoA1/SoW1 bin + PoM,
            # plus one MAC per outlier pair in the OPP.
            post_processing_macs=(2 * self.num_entries - 1) + 2 * self.num_entries + 1 + n_outlier,
        )
        return IndexComputeResult(
            value=value,
            soi=soi,
            soa1=soa1,
            soa2=soa2,
            sow1=sow1,
            sow2=sow2,
            pom=pom,
            outlier_contribution=outlier_contribution,
            stats=stats,
        )

    # ------------------------------------------------------------------ #
    # Batched helpers
    # ------------------------------------------------------------------ #
    def matmul(
        self,
        activations: QuantizedTensor,
        weights: QuantizedTensor,
    ) -> Tuple[np.ndarray, IndexComputeStats]:
        """Index-domain matrix multiply ``activations @ weights``.

        Args:
            activations: Quantized ``(M, K)`` activation matrix.
            weights: Quantized ``(K, N)`` weight matrix.

        Returns:
            The ``(M, N)`` result and the merged operation statistics.
        """
        if len(activations.shape) != 2 or len(weights.shape) != 2:
            raise ValueError("matmul expects 2-D quantized tensors")
        m_rows, k_a = activations.shape
        k_w, n_cols = weights.shape
        if k_a != k_w:
            raise ValueError("inner dimensions do not match")

        act_encoded = activations.encoded
        w_encoded = weights.encoded
        result = np.zeros((m_rows, n_cols), dtype=np.float64)
        stats = IndexComputeStats()
        for row in range(m_rows):
            a_row = _slice_encoded(act_encoded, activations.shape, row, axis=0)
            for col in range(n_cols):
                w_col = _slice_encoded(w_encoded, weights.shape, col, axis=1)
                out = self.dot(a_row, w_col)
                result[row, col] = out.value
                stats.merge(out.stats)
        return result, stats


def _slice_encoded(
    encoded: EncodedValues, shape: Tuple[int, ...], index: int, axis: int
) -> EncodedValues:
    """Extract one row (axis=0) or column (axis=1) of a 2-D encoding."""

    def pick(array: np.ndarray) -> np.ndarray:
        matrix = array.reshape(shape)
        return matrix[index, :] if axis == 0 else matrix[:, index]

    return EncodedValues(
        is_outlier=pick(encoded.is_outlier),
        sign=pick(encoded.sign),
        gaussian_index=pick(encoded.gaussian_index),
        outlier_index=pick(encoded.outlier_index),
    )


def index_domain_dot(
    activations: QuantizedTensor, weights: QuantizedTensor
) -> IndexComputeResult:
    """Dot product of two 1-D quantized tensors in the index domain."""
    engine = IndexDomainEngine(activations.dictionary, weights.dictionary)
    return engine.dot(activations.encoded, weights.encoded)


def index_domain_matmul(
    activations: QuantizedTensor, weights: QuantizedTensor
) -> Tuple[np.ndarray, IndexComputeStats]:
    """Matrix multiply of quantized tensors in the index domain."""
    engine = IndexDomainEngine(activations.dictionary, weights.dictionary)
    return engine.matmul(activations, weights)
