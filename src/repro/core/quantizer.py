"""Tensor-level Mokey quantization API.

:class:`MokeyQuantizer` is the user-facing entry point for quantizing
individual tensors: it owns the Golden Dictionary, fits per-tensor
dictionaries, and produces :class:`QuantizedTensor` objects that know how
to decode themselves and how many bits they occupy in memory.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.golden_dictionary import GoldenDictionary, generate_golden_dictionary
from repro.core.tensor_dictionary import EncodedValues, TensorDictionary

__all__ = ["QuantizedTensor", "MokeyQuantizer"]


@dataclass
class QuantizedTensor:
    """A tensor stored in Mokey's 4-bit index form.

    Attributes:
        name: Tensor name.
        shape: Original tensor shape.
        encoded: Per-value sign / index / outlier encoding.
        dictionary: The per-tensor Gaussian + outlier dictionaries.
    """

    name: str
    shape: Tuple[int, ...]
    encoded: EncodedValues
    dictionary: TensorDictionary

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def outlier_fraction(self) -> float:
        """Fraction of values encoded through the outlier dictionary."""
        return self.encoded.outlier_fraction

    @property
    def outlier_count(self) -> int:
        return self.encoded.outlier_count

    def dequantize(self) -> np.ndarray:
        """Reconstruct the tensor as 16-bit fixed-point values (float array)."""
        return self.dictionary.decode(self.encoded).reshape(self.shape).astype(np.float32)

    def value_bits(self, bits_per_value: int = 4) -> int:
        """Bits used by the quantized value stream alone."""
        return self.size * bits_per_value

    def memory_bits(self, bits_per_value: int = 4, group_size: Optional[int] = None) -> int:
        """Total bits in the off-chip container of Fig. 5.

        Includes the 4-bit value stream, the per-group outlier counts and
        the in-group outlier position pointers (widths shared with the
        packer in :mod:`repro.memory.layout`), plus the per-tensor
        dictionary metadata.
        """
        from repro.memory.layout import COUNT_BITS, GROUP_SIZE, POSITION_BITS

        if group_size is None:
            group_size = GROUP_SIZE
        num_groups = int(np.ceil(self.size / group_size))
        pointer_bits = num_groups * COUNT_BITS + self.outlier_count * POSITION_BITS
        return self.value_bits(bits_per_value) + pointer_bits + self.dictionary.metadata_bits()

    def compression_ratio(self, baseline_bits_per_value: int = 32) -> float:
        """Footprint reduction versus storing the tensor at ``baseline_bits_per_value``."""
        original = self.size * baseline_bits_per_value
        return original / self.memory_bits()

    def content_digest(self) -> str:
        """Content hash of the encoded stream plus its dictionary.

        Two tensors share a digest exactly when their encoded fields,
        shape, and every dictionary parameter that influences decode or
        plane construction agree — so anything keyed by this digest (the
        plane cache) can never go stale: a different tensor is a
        different key by construction.  Memoised per instance; the
        encoding is immutable once constructed.
        """
        memoised = getattr(self, "_content_digest", None)
        if memoised is not None:
            return memoised
        enc, d = self.encoded, self.dictionary
        fit = d.golden.fit
        h = hashlib.sha1()
        h.update(repr(self.shape).encode())
        for field in (enc.is_outlier, enc.sign, enc.gaussian_index, enc.outlier_index):
            h.update(np.ascontiguousarray(field).tobytes())
        h.update(
            np.array(
                [d.mean, d.std, d.threshold, fit.a, fit.b], dtype=np.float64
            ).tobytes()
        )
        h.update(np.array([fit.num_entries], dtype=np.int64).tobytes())
        h.update(np.ascontiguousarray(d.gaussian_half, dtype=np.float64).tobytes())
        h.update(np.ascontiguousarray(d.outlier_centroids, dtype=np.float64).tobytes())
        digest = h.hexdigest()
        self._content_digest = digest
        return digest

    def quantization_error(self, original: np.ndarray) -> Dict[str, float]:
        """Error statistics of the reconstruction against ``original``."""
        original = np.asarray(original, dtype=np.float64).reshape(self.shape)
        recon = self.dequantize().astype(np.float64)
        diff = recon - original
        denom = float(np.abs(original).mean()) or 1.0
        return {
            "mae": float(np.abs(diff).mean()),
            "max_abs": float(np.abs(diff).max()),
            "relative_mae": float(np.abs(diff).mean() / denom),
            "mse": float((diff ** 2).mean()),
        }


class MokeyQuantizer:
    """Quantize tensors to 4-bit dictionary indexes (paper Section II).

    Args:
        golden: A pre-generated Golden Dictionary; one is generated with the
            default parameters if omitted.
        use_exponential: Snap Gaussian centroids to the fitted exponential
            curve (required for index-domain compute).
        fixed_point_bits: Per-layer fixed-point width for centroids/outputs.
        max_outlier_entries: Capacity of the outlier dictionary.
    """

    def __init__(
        self,
        golden: Optional[GoldenDictionary] = None,
        use_exponential: bool = True,
        fixed_point_bits: int = 16,
        max_outlier_entries: int = 16,
        fit_memo: bool = True,
        fit_memo_entries: int = 256,
    ) -> None:
        self.golden = golden or generate_golden_dictionary()
        self.use_exponential = use_exponential
        self.fixed_point_bits = fixed_point_bits
        self.max_outlier_entries = max_outlier_entries
        self.fit_memo = bool(fit_memo)
        self.fit_memo_entries = int(fit_memo_entries)
        self.fit_memo_hits = 0
        self.fit_memo_misses = 0
        self._fit_memo: "OrderedDict[str, TensorDictionary]" = OrderedDict()
        self._fit_memo_lock = threading.Lock()

    def __getstate__(self) -> Dict[str, Any]:
        # The lock (unpicklable) and memo (a cache, not state) stay behind.
        state = dict(self.__dict__)
        state.pop("_fit_memo_lock", None)
        state["_fit_memo"] = OrderedDict()
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._fit_memo_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Dictionary fitting
    # ------------------------------------------------------------------ #
    @staticmethod
    def _fit_digest(values: np.ndarray) -> str:
        # No shape: the fit only sees the flattened value distribution.
        data = np.ascontiguousarray(values, dtype=np.float64)
        return hashlib.sha1(data.tobytes()).hexdigest()

    def fit_dictionary(self, name: str, values: np.ndarray) -> TensorDictionary:
        """Fit per-tensor dictionaries from the full tensor (weights path).

        Fits are memoised by a content digest of the float64 value bytes
        (LRU, :attr:`fit_memo_entries` deep): refitting an identical
        tensor — warm forwards, repeated prefills — returns the previous
        fit, renamed if the caller's name differs.  Exact-bytes keying
        means a hit is the *same* fit the cold path would compute.
        """
        values = np.asarray(values)
        if not self.fit_memo:
            return self._fit_fresh(name, values)
        digest = self._fit_digest(values)
        with self._fit_memo_lock:
            memoised = self._fit_memo.get(digest)
            if memoised is not None:
                self._fit_memo.move_to_end(digest)
                self.fit_memo_hits += 1
        if memoised is not None:
            if memoised.name != name:
                memoised = replace(memoised, name=name)
            return memoised
        fitted = self._fit_fresh(name, values)
        with self._fit_memo_lock:
            self.fit_memo_misses += 1
            self._fit_memo[digest] = fitted
            while len(self._fit_memo) > self.fit_memo_entries:
                self._fit_memo.popitem(last=False)
        return fitted

    def _fit_fresh(self, name: str, values: np.ndarray) -> TensorDictionary:
        return TensorDictionary.fit(
            name=name,
            golden=self.golden,
            values=np.asarray(values),
            use_exponential=self.use_exponential,
            max_outlier_entries=self.max_outlier_entries,
            fixed_point_bits=self.fixed_point_bits,
        )

    def fit_dictionary_from_stats(
        self,
        name: str,
        mean: float,
        std: float,
        minimum: float,
        maximum: float,
        samples: Optional[np.ndarray] = None,
    ) -> TensorDictionary:
        """Fit per-tensor dictionaries from profiled statistics (activations path)."""
        return TensorDictionary.fit(
            name=name,
            golden=self.golden,
            mean=mean,
            std=std,
            minimum=minimum,
            maximum=maximum,
            use_exponential=self.use_exponential,
            max_outlier_entries=self.max_outlier_entries,
            fixed_point_bits=self.fixed_point_bits,
            outlier_samples=samples,
        )

    # ------------------------------------------------------------------ #
    # Quantization
    # ------------------------------------------------------------------ #
    def quantize(
        self,
        values: np.ndarray,
        name: str = "tensor",
        dictionary: Optional[TensorDictionary] = None,
    ) -> QuantizedTensor:
        """Quantize a tensor, fitting its dictionary first if not supplied."""
        values = np.asarray(values)
        dictionary = dictionary or self.fit_dictionary(name, values)
        encoded = dictionary.encode(values)
        return QuantizedTensor(
            name=name,
            shape=tuple(values.shape),
            encoded=encoded,
            dictionary=dictionary,
        )

    def quantize_dequantize(self, values: np.ndarray, name: str = "tensor") -> np.ndarray:
        """Convenience round-trip used for fake-quantized inference."""
        return self.quantize(values, name=name).dequantize()
