"""The Golden Dictionary (paper Section II-B, Fig. 2).

The Golden Dictionary is the single, model-independent dictionary from
which every per-tensor dictionary is derived by a linear transformation
``GD * s + m``.  It is produced once by:

1. sampling a random Gaussian distribution (50,000 samples, mean 0, std 1),
2. applying agglomerative clustering to reduce it to 16 centroids,
3. repeating and averaging over several generated distributions, and
4. exploiting the symmetry of N(0, 1) so that only the 8 positive-half
   centroids need to be stored (the negative half mirrors them).

The stored centroids are 16-bit fixed-point values, and the positive half
is additionally approximated by an exponential curve ``a**int + b``
(see :mod:`repro.core.exponential_fit`), which is what enables the
index-domain computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.agglomerative import agglomerative_cluster_1d
from repro.core.exponential_fit import ExponentialFit, fit_exponential
from repro.core.fixed_point import FixedPointFormat

__all__ = ["GoldenDictionary", "generate_golden_dictionary"]

DEFAULT_NUM_SAMPLES = 50_000
DEFAULT_NUM_REPEATS = 4
DEFAULT_NUM_ENTRIES = 16


@dataclass
class GoldenDictionary:
    """The symmetric, model-independent reference dictionary.

    Attributes:
        half: The positive-half centroid magnitudes, sorted ascending
            (index 0 is the centroid nearest zero).  Length is
            ``num_entries // 2`` (8 for the paper's 4-bit configuration).
        fit: The exponential approximation of ``half``.
        fixed_point: The 16-bit fixed-point format used to store centroids.
    """

    half: np.ndarray
    fit: ExponentialFit
    fixed_point: FixedPointFormat

    def __post_init__(self) -> None:
        self.half = np.asarray(self.half, dtype=np.float64)
        if self.half.ndim != 1 or self.half.size < 2:
            raise ValueError("half must be a 1-D array with at least two entries")
        if np.any(self.half < 0):
            raise ValueError("half centroids must be non-negative magnitudes")
        if np.any(np.diff(self.half) <= 0):
            raise ValueError("half centroids must be strictly increasing")

    @property
    def num_half_entries(self) -> int:
        """Number of positive-half centroids (8 for 4-bit quantization)."""
        return int(self.half.size)

    @property
    def num_entries(self) -> int:
        """Total dictionary entries including the mirrored negative half."""
        return 2 * self.num_half_entries

    @property
    def index_bits(self) -> int:
        """Bits needed for the magnitude index (3 for 8 half entries)."""
        return int(np.ceil(np.log2(self.num_half_entries)))

    @property
    def bits_per_value(self) -> int:
        """Bits per stored value: 1 sign bit + index bits (4 in the paper)."""
        return 1 + self.index_bits

    def full(self) -> np.ndarray:
        """All centroids, negative half first, sorted ascending."""
        return np.concatenate([-self.half[::-1], self.half])

    def exponential_half(self) -> np.ndarray:
        """The half centroids snapped to the fitted exponential curve.

        The values are kept exact (not rounded to the 16-bit storage grid)
        because the Mokey datapath never reads stored centroids for Gaussian
        values: the GPEs count exponent sums and the OPP regenerates the
        ``a**k`` bases during post-processing, so the arithmetic follows the
        exponential curve exactly.
        """
        return self.fit.magnitudes()

    def stored_half(self, use_exponential: bool = True) -> np.ndarray:
        """The half magnitudes used for decoding.

        Args:
            use_exponential: If True (the Mokey accelerator configuration),
                the centroids are the exponential-curve values so the
                index-domain arithmetic is exact with respect to decoding.
                If False, the raw clustered centroids rounded to the 16-bit
                fixed-point storage grid are used (the memory-compression-only
                configuration).
        """
        if use_exponential:
            return self.exponential_half()
        return self.fixed_point.quantize(self.half)

    def gaussian_threshold(self) -> float:
        """Magnitude (in units of std) above which a value is an outlier.

        The threshold is the upper edge of the outermost Gaussian bin: the
        last centroid plus half the distance to its neighbour.
        """
        return float(self.half[-1] + 0.5 * (self.half[-1] - self.half[-2]))


def generate_golden_dictionary(
    num_entries: int = DEFAULT_NUM_ENTRIES,
    num_samples: int = DEFAULT_NUM_SAMPLES,
    num_repeats: int = DEFAULT_NUM_REPEATS,
    seed: int = 0,
    fixed_point_bits: int = 16,
) -> GoldenDictionary:
    """Generate the Golden Dictionary (paper Step 1).

    Args:
        num_entries: Total dictionary size (16 for 4-bit quantization).
        num_samples: Samples per generated N(0, 1) distribution.
        num_repeats: How many generated distributions to average over.
        seed: Base random seed (each repeat uses ``seed + repeat``).
        fixed_point_bits: Bit-width of the stored fixed-point centroids.

    Returns:
        The populated :class:`GoldenDictionary`.
    """
    if num_entries < 4 or num_entries % 2 != 0:
        raise ValueError("num_entries must be an even number >= 4")
    if num_repeats < 1:
        raise ValueError("num_repeats must be >= 1")
    half_entries = num_entries // 2

    halves = []
    for repeat in range(num_repeats):
        rng = np.random.default_rng(seed + repeat)
        samples = rng.normal(0.0, 1.0, size=num_samples)
        # Cluster the magnitudes: the dictionary is symmetric around zero, so
        # clustering |x| into num_entries/2 centroids and mirroring is
        # equivalent to clustering the full symmetric distribution into
        # num_entries centroids, and needs only half the work.
        result = agglomerative_cluster_1d(np.abs(samples), half_entries)
        halves.append(result.centroids)
    half = np.mean(np.stack(halves, axis=0), axis=0)

    fit = fit_exponential(half)
    fixed_point = FixedPointFormat.for_range(-half[-1], half[-1], total_bits=fixed_point_bits)
    return GoldenDictionary(half=half, fit=fit, fixed_point=fixed_point)
