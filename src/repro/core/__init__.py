"""Mokey core: the paper's quantization method.

Modules:

``agglomerative``
    Bottom-up agglomerative clustering used to build the Golden Dictionary.
``golden_dictionary``
    The model-independent Golden Dictionary (paper Step 1, Fig. 2).
``exponential_fit``
    Weighted fit of ``a**int + b`` to the Golden Dictionary (Fig. 3).
``fixed_point``
    Float-to-fixed-point conversion (Eq. 7-8).
``tensor_dictionary``
    Per-tensor Gaussian/outlier dictionaries (paper Step 2).
``quantizer``
    Encoding/decoding of tensors into 4-bit sign+index form.
``index_compute``
    The index-domain MAC decomposition (Eq. 3-6, Fig. 4).
``activation_quantizer``
    On-the-fly output-activation quantization (Fig. 7).
``model_quantizer``
    Whole-model quantization: weights offline, activations via profiling.
"""

from repro.core.agglomerative import agglomerative_cluster_1d, pairwise_agglomerative
from repro.core.golden_dictionary import GoldenDictionary, generate_golden_dictionary
from repro.core.exponential_fit import ExponentialFit, fit_exponential
from repro.core.fixed_point import FixedPointFormat, to_fixed_point
from repro.core.tensor_dictionary import TensorDictionary
from repro.core.quantizer import MokeyQuantizer, QuantizedTensor
from repro.core.index_compute import (
    IndexDomainEngine,
    VectorizedIndexDomainEngine,
    index_domain_dot,
    index_domain_matmul,
    vectorized_index_domain_matmul,
)
from repro.core.activation_quantizer import OutputActivationQuantizer
from repro.core.model_quantizer import MokeyModelQuantizer, QuantizationMode

__all__ = [
    "agglomerative_cluster_1d",
    "pairwise_agglomerative",
    "GoldenDictionary",
    "generate_golden_dictionary",
    "ExponentialFit",
    "fit_exponential",
    "FixedPointFormat",
    "to_fixed_point",
    "TensorDictionary",
    "MokeyQuantizer",
    "QuantizedTensor",
    "IndexDomainEngine",
    "VectorizedIndexDomainEngine",
    "index_domain_dot",
    "index_domain_matmul",
    "vectorized_index_domain_matmul",
    "OutputActivationQuantizer",
    "MokeyModelQuantizer",
    "QuantizationMode",
]
