"""Whole-model Mokey quantization (paper Section II-G "Summary").

The :class:`MokeyModelQuantizer` applies the three quantization steps to a
:class:`~repro.transformer.model.TransformerModel`:

1. (once, offline) obtain the Golden Dictionary;
2. quantize every parameter tensor (weights and embeddings) to 4-bit
   indexes, replacing the model's parameters with their dequantized
   16-bit fixed-point reconstructions;
3. run a profiling pass over a small batch of inputs to fit the
   per-activation-tensor dictionaries, which are then used to
   fake-quantize activations during inference (modelling the runtime
   encode/decode of Section II-A).

The same machinery also serves the memory-compression-only deployment: the
numerics are identical, only the accelerator model differs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set, Tuple

import numpy as np

from repro.core.golden_dictionary import GoldenDictionary, generate_golden_dictionary
from repro.core.quantizer import MokeyQuantizer, QuantizedTensor
from repro.core.tensor_dictionary import TensorDictionary
from repro.transformer.model import TransformerModel
from repro.transformer.profiling import ActivationProfiler
from repro.transformer.tasks import SyntheticDataset
from repro.transformer.tensors import ActivationRecorder

__all__ = [
    "QuantizationMode",
    "QuantizationReport",
    "ActivationQuantizationHook",
    "QuantizedModel",
    "MokeyModelQuantizer",
]

# Activations that are never quantized: the final task logits are consumed
# immediately and never stored back to memory.
DEFAULT_ACTIVATION_EXCLUDES = ("head.output",)


class QuantizationMode(enum.Enum):
    """Deployment modes evaluated in the paper."""

    WEIGHTS_ONLY = "weights_only"
    WEIGHTS_AND_ACTIVATIONS = "weights_and_activations"
    MEMORY_COMPRESSION = "memory_compression"


@dataclass
class QuantizationReport:
    """Summary of a whole-model quantization.

    Attributes:
        weight_outlier_fraction: Fraction of parameter values encoded through
            outlier dictionaries (paper Table I "W OT%").
        activation_outlier_fraction: Same for activations ("A OT%"), measured
            over the evaluation run.
        weight_values: Total number of quantized parameter values.
        activation_values: Total number of quantized activation values seen.
        weight_bits: Off-chip footprint of the quantized parameters in bits.
        original_weight_bits: Footprint of the FP parameters in bits.
        per_tensor_outlier_fraction: Outlier fraction per parameter tensor.
    """

    weight_outlier_fraction: float = 0.0
    activation_outlier_fraction: float = 0.0
    weight_values: int = 0
    activation_values: int = 0
    weight_bits: int = 0
    original_weight_bits: int = 0
    per_tensor_outlier_fraction: Dict[str, float] = field(default_factory=dict)

    @property
    def weight_compression_ratio(self) -> float:
        if self.weight_bits == 0:
            return 1.0
        return self.original_weight_bits / self.weight_bits


class ActivationQuantizationHook:
    """Forward-pass hook that fake-quantizes activations through their dictionaries.

    The hook can be passed as the ``hook`` argument of a model call.  It
    also keeps running outlier statistics so the evaluation can report the
    activation outlier fraction.
    """

    def __init__(
        self,
        dictionaries: Dict[str, TensorDictionary],
        excludes: Iterable[str] = DEFAULT_ACTIVATION_EXCLUDES,
    ) -> None:
        self.dictionaries = dictionaries
        self.excludes: Set[str] = set(excludes)
        self.outlier_values = 0
        self.total_values = 0

    def __call__(self, name: str, array: np.ndarray) -> np.ndarray:
        dictionary = self.dictionaries.get(name)
        if dictionary is None or name in self.excludes:
            return array
        encoded = dictionary.encode(np.asarray(array))
        self.outlier_values += encoded.outlier_count
        self.total_values += encoded.size
        return dictionary.decode(encoded).reshape(array.shape).astype(np.float32)

    @property
    def outlier_fraction(self) -> float:
        if self.total_values == 0:
            return 0.0
        return self.outlier_values / self.total_values

    def reset_statistics(self) -> None:
        self.outlier_values = 0
        self.total_values = 0


@dataclass
class QuantizedModel:
    """A quantized model together with everything needed to run it.

    Attributes:
        model: The model whose parameters have been replaced by their
            dequantized reconstructions.
        mode: The deployment mode the quantization targets.
        quantized_weights: Per-parameter quantized tensors (index form).
        activation_dictionaries: Per-activation-tensor dictionaries fitted by
            profiling (empty for weight-only quantization).
        report: Quantization summary statistics.
    """

    model: TransformerModel
    mode: QuantizationMode
    quantized_weights: Dict[str, QuantizedTensor]
    activation_dictionaries: Dict[str, TensorDictionary]
    report: QuantizationReport

    def activation_hook(self) -> Optional[ActivationQuantizationHook]:
        """A fresh activation fake-quantization hook (None for weight-only)."""
        if self.mode is QuantizationMode.WEIGHTS_ONLY or not self.activation_dictionaries:
            return None
        return ActivationQuantizationHook(self.activation_dictionaries)


class MokeyModelQuantizer:
    """Quantizes whole transformer models with the Mokey method.

    Args:
        golden: Pre-generated Golden Dictionary (generated once if omitted).
        quantizer: Tensor-level quantizer; constructed from ``golden`` if
            omitted.
        activation_sample_values: Number of values sub-sampled per activation
            tensor during profiling to place outlier centroids.
    """

    def __init__(
        self,
        golden: Optional[GoldenDictionary] = None,
        quantizer: Optional[MokeyQuantizer] = None,
        activation_sample_values: int = 65536,
    ) -> None:
        self.golden = golden or generate_golden_dictionary()
        self.quantizer = quantizer or MokeyQuantizer(self.golden)
        self.activation_sample_values = activation_sample_values

    # ------------------------------------------------------------------ #
    # Step 2/3 of the paper: parameters
    # ------------------------------------------------------------------ #
    def quantize_weights(
        self, model: TransformerModel
    ) -> Tuple[TransformerModel, Dict[str, QuantizedTensor], QuantizationReport]:
        """Quantize all parameter tensors and return the dequantized twin."""
        quantized_model = model.copy()
        quantized_weights: Dict[str, QuantizedTensor] = {}
        report = QuantizationReport()

        for name, values in model.weight_matrices().items():
            quantized = self.quantizer.quantize(values, name=name)
            quantized_weights[name] = quantized
            quantized_model.set_parameter(name, quantized.dequantize())

            report.weight_values += quantized.size
            report.weight_bits += quantized.memory_bits()
            report.original_weight_bits += quantized.size * 32
            report.per_tensor_outlier_fraction[name] = quantized.outlier_fraction

        if report.weight_values:
            total_outliers = sum(q.outlier_count for q in quantized_weights.values())
            report.weight_outlier_fraction = total_outliers / report.weight_values
        return quantized_model, quantized_weights, report

    # ------------------------------------------------------------------ #
    # Step 3 of the paper: activation profiling
    # ------------------------------------------------------------------ #
    def calibrate_activations(
        self,
        model: TransformerModel,
        dataset: SyntheticDataset,
        num_samples: int = 8,
        batch_size: int = 8,
    ) -> Dict[str, TensorDictionary]:
        """Fit per-activation dictionaries from a profiling run.

        The profiling pass records streaming statistics (mean, std, min,
        max) for every activation tensor plus a bounded sub-sample of its
        values used to place the outlier centroids — mirroring the paper's
        single-batch profiling run.
        """
        profiler = ActivationProfiler()
        recorder = ActivationRecorder(max_values_per_tensor=self.activation_sample_values)

        def combined_hook(name: str, array: np.ndarray) -> np.ndarray:
            profiler(name, array)
            recorder(name, array)
            return array

        num_samples = min(num_samples, dataset.num_samples)
        for start in range(0, num_samples, batch_size):
            end = min(start + batch_size, num_samples)
            model(
                dataset.token_ids[start:end],
                segment_ids=dataset.segment_ids[start:end],
                attention_mask=dataset.attention_mask[start:end],
                hook=combined_hook,
            )

        samples = recorder.concatenated()
        dictionaries: Dict[str, TensorDictionary] = {}
        for name, stats in profiler.statistics.items():
            if name in DEFAULT_ACTIVATION_EXCLUDES:
                continue
            dictionaries[name] = self.quantizer.fit_dictionary_from_stats(
                name=name,
                mean=stats.mean,
                std=stats.std,
                minimum=stats.minimum,
                maximum=stats.maximum,
                samples=samples.get(name),
            )
        return dictionaries

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def quantize(
        self,
        model: TransformerModel,
        mode: QuantizationMode = QuantizationMode.WEIGHTS_AND_ACTIVATIONS,
        profiling_dataset: Optional[SyntheticDataset] = None,
        profiling_samples: int = 8,
    ) -> QuantizedModel:
        """Quantize ``model`` for the requested deployment mode.

        Args:
            model: The FP model to quantize (left unmodified).
            mode: Weight-only, weight+activation, or memory-compression.
            profiling_dataset: Inputs for the activation profiling run;
                required unless ``mode`` is ``WEIGHTS_ONLY``.
            profiling_samples: Number of profiling inputs (paper uses 8).
        """
        quantized_model, quantized_weights, report = self.quantize_weights(model)

        activation_dictionaries: Dict[str, TensorDictionary] = {}
        if mode is not QuantizationMode.WEIGHTS_ONLY:
            if profiling_dataset is None:
                raise ValueError(f"{mode.value} quantization requires a profiling dataset")
            activation_dictionaries = self.calibrate_activations(
                quantized_model, profiling_dataset, num_samples=profiling_samples
            )

        return QuantizedModel(
            model=quantized_model,
            mode=mode,
            quantized_weights=quantized_weights,
            activation_dictionaries=activation_dictionaries,
            report=report,
        )
