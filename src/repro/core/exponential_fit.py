"""Exponential curve fit to the Golden Dictionary (paper Section II-D, Fig. 3).

Mokey fits ``value = a**int + b`` to the positive half of the Golden
Dictionary, where ``int`` runs over the integers 0..7 (for 4-bit
quantization: 1 sign bit + 3 index bits).  The fit is weighted: the bin
closest to zero gets weight ``2**7`` and the weight halves for every bin
moving outward, emphasising the densely populated ranges near the mean.
The paper reports ``a = 1.179`` and ``b = -0.977`` for its Golden
Dictionary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import optimize

__all__ = ["ExponentialFit", "fit_exponential"]


@dataclass(frozen=True)
class ExponentialFit:
    """The fitted ``a**int + b`` approximation of a dictionary half.

    Attributes:
        a: Base of the exponential.
        b: Additive offset.
        num_entries: Number of integer exponents (8 for 4-bit quantization).
    """

    a: float
    b: float
    num_entries: int = 8

    def magnitudes(self) -> np.ndarray:
        """Centroid magnitudes ``a**int + b`` for int = 0..num_entries-1."""
        ints = np.arange(self.num_entries, dtype=np.float64)
        return self.a ** ints + self.b

    def value(self, index: np.ndarray, sign: Optional[np.ndarray] = None) -> np.ndarray:
        """Decode magnitude (or signed value) for integer index(es)."""
        index = np.asarray(index)
        magnitude = self.a ** index.astype(np.float64) + self.b
        if sign is None:
            return magnitude
        return np.where(np.asarray(sign) >= 0, magnitude, -magnitude)

    def max_exponent_sum(self) -> int:
        """Largest possible exponent sum of a product of two indexes."""
        return 2 * (self.num_entries - 1)

    def product_bases(self) -> np.ndarray:
        """``a**k`` for every possible exponent sum k (the SoI bases)."""
        sums = np.arange(self.max_exponent_sum() + 1, dtype=np.float64)
        return self.a ** sums

    def fit_error(self, half_dictionary: Sequence[float]) -> float:
        """Maximum absolute error of the fit against a dictionary half."""
        half = np.asarray(half_dictionary, dtype=np.float64)
        if half.size != self.num_entries:
            raise ValueError("dictionary half size does not match num_entries")
        return float(np.max(np.abs(self.magnitudes() - half)))


def fit_exponential(
    half_dictionary: Sequence[float],
    initial_a: float = 1.2,
    initial_b: float = -1.0,
) -> ExponentialFit:
    """Fit ``a**int + b`` to the positive half of a dictionary.

    Args:
        half_dictionary: The positive-half centroids sorted ascending
            (the entry nearest zero first), typically 8 values.
        initial_a: Initial guess for the exponential base.
        initial_b: Initial guess for the offset.

    Returns:
        The fitted :class:`ExponentialFit`.

    The weighting scheme follows the paper: unit weight for the outermost
    bin, doubling toward zero, i.e. weights ``2**(n-1) .. 2**0``.
    """
    half = np.asarray(half_dictionary, dtype=np.float64).ravel()
    if half.size < 2:
        raise ValueError("need at least two dictionary entries to fit a curve")
    if np.any(np.diff(half) < 0):
        raise ValueError("half dictionary must be sorted ascending")

    n = half.size
    ints = np.arange(n, dtype=np.float64)
    weights = 2.0 ** np.arange(n - 1, -1, -1)

    def residuals(params: np.ndarray) -> np.ndarray:
        a, b = params
        return np.sqrt(weights) * (a ** ints + b - half)

    result = optimize.least_squares(
        residuals,
        x0=np.array([initial_a, initial_b]),
        bounds=([1.0 + 1e-6, -10.0], [10.0, 10.0]),
    )
    a, b = result.x
    return ExponentialFit(a=float(a), b=float(b), num_entries=n)
