"""Fixed-point conversion (paper Section II-F, Eq. 7-8).

Mokey performs all inference arithmetic in the fixed-point (integer)
domain.  During profiling, every tensor's parameters (dictionary
centroids, means, standard deviations, the pre-computed SoW/PoM constants)
are converted to a per-layer fixed-point format:

* the number of fractional bits is ``frac = b - ceil(log2(max - min))``
  where ``b`` is the total bit-width and ``[min, max]`` the layer's value
  range (Eq. 7), and
* a float ``fl`` maps to ``fx = round(fl * 2**frac) / 2**frac`` (Eq. 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

__all__ = ["FixedPointFormat", "to_fixed_point", "quantization_step"]

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class FixedPointFormat:
    """A fixed-point number format.

    Attributes:
        total_bits: Total bit width including the sign bit (16 in the paper).
        frac_bits: Number of fractional bits.
    """

    total_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.total_bits <= 0:
            raise ValueError("total_bits must be positive")

    @classmethod
    def for_range(
        cls, minimum: float, maximum: float, total_bits: int = 16
    ) -> "FixedPointFormat":
        """Derive the format for a value range per Eq. 7.

        ``frac = total_bits - ceil(log2(span))`` where the span is the width
        of the smallest zero-symmetric interval containing ``[min, max]``
        (``2 * max(|min|, |max|)``).  For the zero-centred tensors of
        transformer models this equals the paper's ``max - min``; for
        one-sided ranges it guarantees the signed format can actually
        represent the extreme values.  A degenerate all-zero range keeps all
        bits fractional.
        """
        if float(maximum) < float(minimum):
            raise ValueError("maximum must be >= minimum")
        span = 2.0 * max(abs(float(minimum)), abs(float(maximum)))
        if span == 0:
            return cls(total_bits=total_bits, frac_bits=total_bits)
        frac = total_bits - math.ceil(math.log2(span))
        return cls(total_bits=total_bits, frac_bits=frac)

    @property
    def scale(self) -> float:
        """The value of one least-significant bit (2**-frac_bits)."""
        return 2.0 ** (-self.frac_bits)

    @property
    def max_magnitude(self) -> float:
        """Largest representable magnitude for a signed value."""
        return (2 ** (self.total_bits - 1) - 1) * self.scale

    def quantize(self, values: ArrayLike) -> np.ndarray:
        """Map float values to their fixed-point representable values (Eq. 8)."""
        values = np.asarray(values, dtype=np.float64)
        quantized = np.round(values * 2.0 ** self.frac_bits) / 2.0 ** self.frac_bits
        return np.clip(quantized, -self.max_magnitude - self.scale, self.max_magnitude)

    def to_int(self, values: ArrayLike) -> np.ndarray:
        """Integer (raw) representation of float values in this format."""
        values = np.asarray(values, dtype=np.float64)
        ints = np.round(values * 2.0 ** self.frac_bits).astype(np.int64)
        limit = 2 ** (self.total_bits - 1)
        return np.clip(ints, -limit, limit - 1)

    def from_int(self, ints: ArrayLike) -> np.ndarray:
        """Float values corresponding to raw integer representations."""
        return np.asarray(ints, dtype=np.float64) * self.scale

    def quantization_error(self, values: ArrayLike) -> float:
        """Maximum absolute quantization error over ``values``."""
        values = np.asarray(values, dtype=np.float64)
        return float(np.max(np.abs(values - self.quantize(values)))) if values.size else 0.0


def quantization_step(minimum: float, maximum: float, total_bits: int = 16) -> float:
    """Resolution (LSB value) of the format chosen for a value range."""
    return FixedPointFormat.for_range(minimum, maximum, total_bits).scale


def to_fixed_point(
    values: ArrayLike, minimum: float, maximum: float, total_bits: int = 16
) -> np.ndarray:
    """One-shot conversion of ``values`` using the range-derived format."""
    return FixedPointFormat.for_range(minimum, maximum, total_bits).quantize(values)
