"""Agglomerative clustering used to generate the Golden Dictionary.

The paper chooses agglomerative clustering (AC) over k-means because AC is
not sensitive to initial cluster selection (Section II-B), but notes that
running AC directly on million-value tensors is impractical because of its
O(n^2) memory and O(n^3) runtime.  Mokey therefore only runs AC once, on a
synthetic 50,000-sample N(0,1) distribution.  The paper generates its
Golden Dictionary with SciKit-Learn's agglomerative clustering, whose
default criterion is Ward linkage; Ward keeps the densely populated region
near the mean finely clustered and absorbs the sparse tail into wide
clusters, which is what gives the Golden Dictionary its shape (innermost
centroid near zero, outermost around 2.2 sigma).

Two implementations are provided:

* :func:`pairwise_agglomerative` — the textbook O(n^3) bottom-up algorithm
  supporting Ward and average linkage.  Exact, used on small inputs and as
  the reference in tests.
* :func:`agglomerative_cluster_1d` — an efficient O(n log n) variant that
  exploits the input being one-dimensional: clusters are contiguous ranges
  of the sorted input, so only adjacent cluster pairs ever need to be
  considered for merging.  This makes the 50,000-sample Golden Dictionary
  generation run in well under a second.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["ClusteringResult", "pairwise_agglomerative", "agglomerative_cluster_1d"]

_LINKAGES = ("ward", "average")


@dataclass
class ClusteringResult:
    """Result of an agglomerative clustering run.

    Attributes:
        centroids: Cluster means, sorted ascending.
        sizes: Number of input values assigned to each centroid.
        assignments: For each input value (in the original order), the index
            of the centroid it belongs to.
    """

    centroids: np.ndarray
    sizes: np.ndarray
    assignments: np.ndarray

    @property
    def num_clusters(self) -> int:
        return len(self.centroids)


def _validate(values: np.ndarray, num_clusters: int, linkage: str) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValueError("cannot cluster an empty array")
    if num_clusters < 1:
        raise ValueError("num_clusters must be >= 1")
    if num_clusters > values.size:
        raise ValueError(
            f"num_clusters ({num_clusters}) exceeds number of values ({values.size})"
        )
    if linkage not in _LINKAGES:
        raise ValueError(f"linkage must be one of {_LINKAGES}, got {linkage!r}")
    return values


def _linkage_distance(
    linkage: str, mean_a: float, count_a: int, mean_b: float, count_b: int
) -> float:
    """Merge cost between two disjoint 1-D clusters given their summaries.

    For contiguous 1-D clusters the average pairwise distance (average
    linkage) reduces to the distance between the cluster means, and Ward's
    criterion is the usual ``nA*nB/(nA+nB) * ||meanA-meanB||^2``.
    """
    gap = abs(mean_b - mean_a)
    if linkage == "average":
        return gap
    return (count_a * count_b) / (count_a + count_b) * gap * gap


def pairwise_agglomerative(
    values: Sequence[float], num_clusters: int, linkage: str = "ward"
) -> ClusteringResult:
    """Exact bottom-up agglomerative clustering (small inputs only).

    Every value starts as its own cluster; at each step the pair of
    clusters with the smallest linkage cost is merged, until
    ``num_clusters`` remain.
    """
    values = _validate(np.asarray(values), num_clusters, linkage)
    n = values.size
    if n > 2000:
        raise ValueError(
            "pairwise_agglomerative is O(n^3); use agglomerative_cluster_1d for large inputs"
        )

    clusters: List[List[int]] = [[i] for i in range(n)]
    while len(clusters) > num_clusters:
        best = (float("inf"), -1, -1)
        for i in range(len(clusters)):
            vi = values[clusters[i]]
            for j in range(i + 1, len(clusters)):
                vj = values[clusters[j]]
                if linkage == "average":
                    dist = float(np.abs(vi[:, None] - vj[None, :]).mean())
                else:
                    dist = _linkage_distance(
                        "ward", float(vi.mean()), vi.size, float(vj.mean()), vj.size
                    )
                if dist < best[0]:
                    best = (dist, i, j)
        _, i, j = best
        clusters[i] = clusters[i] + clusters[j]
        del clusters[j]

    return _build_result(values, clusters)


def agglomerative_cluster_1d(
    values: Sequence[float], num_clusters: int, linkage: str = "ward"
) -> ClusteringResult:
    """Efficient agglomerative clustering for 1-D data.

    Exploits the fact that for one-dimensional data, clusters produced by
    Ward or average linkage are contiguous ranges of the sorted input, so
    merging only ever needs to consider adjacent cluster pairs.  A lazy
    heap over adjacent-pair merge costs handles this in O(n log n).
    """
    values = _validate(np.asarray(values), num_clusters, linkage)
    n = values.size
    order = np.argsort(values, kind="mergesort")
    sorted_values = values[order]

    # Cluster state, indexed by cluster id (initially one per value).
    sums = sorted_values.astype(np.float64).copy()
    counts = np.ones(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    left = np.arange(n) - 1  # neighbour ids; -1 / n mean "none"
    right = np.arange(n) + 1
    version = np.zeros(n, dtype=np.int64)

    def mean(cid: int) -> float:
        return sums[cid] / counts[cid]

    def cost(cid_a: int, cid_b: int) -> float:
        return _linkage_distance(
            linkage, mean(cid_a), int(counts[cid_a]), mean(cid_b), int(counts[cid_b])
        )

    heap: List[Tuple[float, int, int, int, int]] = []
    for cid in range(n - 1):
        heapq.heappush(heap, (cost(cid, cid + 1), cid, cid + 1, 0, 0))

    remaining = n
    while remaining > num_clusters:
        _, a, b, va, vb = heapq.heappop(heap)
        if not (alive[a] and alive[b]) or version[a] != va or version[b] != vb:
            continue
        if right[a] != b:
            continue
        # Merge b into a.
        sums[a] += sums[b]
        counts[a] += counts[b]
        alive[b] = False
        version[a] += 1
        right[a] = right[b]
        if right[b] < n:
            left[right[b]] = a
        remaining -= 1

        if left[a] >= 0:
            la = left[a]
            heapq.heappush(heap, (cost(la, a), la, a, int(version[la]), int(version[a])))
        if right[a] < n:
            ra = right[a]
            heapq.heappush(heap, (cost(a, ra), a, ra, int(version[a]), int(version[ra])))

    # Collect surviving clusters in sorted (left to right) order.
    cluster_ids = [cid for cid in range(n) if alive[cid]]
    start = 0
    clusters: List[List[int]] = []
    for cid in cluster_ids:
        size = int(counts[cid])
        clusters.append(list(order[start:start + size]))
        start += size

    return _build_result(values, clusters)


def _build_result(values: np.ndarray, clusters: List[List[int]]) -> ClusteringResult:
    centroids = np.array([values[c].mean() for c in clusters])
    sizes = np.array([len(c) for c in clusters], dtype=np.int64)
    sort = np.argsort(centroids)
    centroids = centroids[sort]
    sizes = sizes[sort]
    assignments = np.empty(values.size, dtype=np.int64)
    for new_index, old_index in enumerate(sort):
        for value_index in clusters[old_index]:
            assignments[value_index] = new_index
    return ClusteringResult(centroids=centroids, sizes=sizes, assignments=assignments)
