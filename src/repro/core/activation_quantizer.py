"""On-the-fly output-activation quantization (paper Section III-B, Fig. 7).

After a layer produces its 16-bit fixed-point output activations, Mokey
quantizes them back to 4-bit indexes before they are written to memory.
The hardware does this with a comparator array: each output activation is
compared against every centroid of the (sorted) combined Gaussian+outlier
dictionary, a leading-one detector picks the two bracketing centroids, and
the nearer one wins.  This module models that unit functionally and counts
the comparator work for the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.quantizer import QuantizedTensor
from repro.core.tensor_dictionary import EncodedValues, TensorDictionary

__all__ = ["QuantizerStats", "OutputActivationQuantizer"]


@dataclass
class QuantizerStats:
    """Operation counts of the output-activation quantizer."""

    values: int = 0
    comparisons: int = 0
    subtractions: int = 0

    def merge(self, other: "QuantizerStats") -> "QuantizerStats":
        self.values += other.values
        self.comparisons += other.comparisons
        self.subtractions += other.subtractions
        return self


class OutputActivationQuantizer:
    """Quantizes 16-bit fixed-point output activations to 4-bit indexes.

    Args:
        dictionary: The output tensor's Gaussian + outlier dictionaries
            (prepared during profiling).
    """

    def __init__(self, dictionary: TensorDictionary) -> None:
        self.dictionary = dictionary
        # The comparator array of Fig. 7 holds the combined sorted centroids.
        self.centroids = dictionary.all_centroids()

    @property
    def num_comparators(self) -> int:
        """Number of parallel comparators in the hardware unit (up to 32)."""
        return int(self.centroids.size)

    def quantize(self, output_activations: np.ndarray, name: str = "output") -> Tuple[QuantizedTensor, QuantizerStats]:
        """Quantize output activations and report the comparator work.

        The functional result is identical to
        :meth:`TensorDictionary.encode`; the stats model the hardware cost:
        every value is compared against every centroid in parallel, then two
        subtractions and one final comparison resolve the nearer centroid.
        """
        values = np.asarray(output_activations)
        fixed = self.dictionary.fixed_point.quantize(values)
        encoded = self.dictionary.encode(fixed)
        quantized = QuantizedTensor(
            name=name,
            shape=tuple(values.shape),
            encoded=encoded,
            dictionary=self.dictionary,
        )
        stats = QuantizerStats(
            values=int(values.size),
            comparisons=int(values.size) * (self.num_comparators + 1),
            subtractions=2 * int(values.size),
        )
        return quantized, stats

    def round_trip_error(self, output_activations: np.ndarray) -> float:
        """Mean absolute reconstruction error of quantizing these outputs."""
        quantized, _ = self.quantize(output_activations)
        recon = quantized.dequantize()
        return float(np.abs(recon - np.asarray(output_activations, dtype=np.float32)).mean())
