"""Off-chip DRAM model (DRAMsim3 substitute).

The paper simulates a DDR4-3200 dual-channel main memory with DRAMsim3.
This analytical model captures the two quantities the evaluation depends
on: transfer time (cycles at the accelerator clock) and transfer energy.
Sequential streaming efficiency and a per-transaction overhead approximate
the row-buffer behaviour of the cycle-accurate simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DramModel"]


@dataclass(frozen=True)
class DramModel:
    """DDR4-3200 dual-channel main memory.

    Attributes:
        data_rate_mts: Transfer rate in mega-transfers per second per channel.
        bus_bytes: Bytes per transfer per channel (64-bit bus).
        channels: Number of channels.
        streaming_efficiency: Fraction of peak bandwidth achieved for the
            (mostly sequential) tensor streams.
        energy_per_byte_pj: Average DRAM access + I/O energy per byte.
        transaction_bytes: Minimum burst granularity.
    """

    data_rate_mts: float = 3200.0
    bus_bytes: int = 8
    channels: int = 2
    streaming_efficiency: float = 0.55
    energy_per_byte_pj: float = 120.0
    transaction_bytes: int = 64

    @property
    def peak_bandwidth_bytes_per_second(self) -> float:
        """Peak bandwidth across all channels."""
        return self.data_rate_mts * 1e6 * self.bus_bytes * self.channels

    @property
    def effective_bandwidth_bytes_per_second(self) -> float:
        """Bandwidth after the streaming-efficiency derating."""
        return self.peak_bandwidth_bytes_per_second * self.streaming_efficiency

    def bytes_per_cycle(self, clock_hz: float = 1e9) -> float:
        """Effective bytes delivered per accelerator clock cycle."""
        return self.effective_bandwidth_bytes_per_second / clock_hz

    def transfer_bytes(self, requested_bytes: float) -> float:
        """Bytes actually moved, rounded up to the burst granularity."""
        if requested_bytes <= 0:
            return 0.0
        transactions = -(-requested_bytes // self.transaction_bytes)
        return transactions * self.transaction_bytes

    def transfer_cycles(self, requested_bytes: float, clock_hz: float = 1e9) -> float:
        """Cycles (at the accelerator clock) to stream ``requested_bytes``."""
        return self.transfer_bytes(requested_bytes) / self.bytes_per_cycle(clock_hz)

    def transfer_energy_joules(self, requested_bytes: float) -> float:
        """Energy to move ``requested_bytes`` to/from DRAM."""
        return self.transfer_bytes(requested_bytes) * self.energy_per_byte_pj * 1e-12
