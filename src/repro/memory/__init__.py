"""Memory-system substrate: layouts, compression accounting, DRAM and SRAM models.

The paper's hardware evaluation couples DRAMsim3 (DDR4-3200 dual channel)
and CACTI-derived on-chip buffer models with the Mokey off-chip container
of Fig. 5.  This subpackage provides the equivalent analytical models.
"""

from repro.memory.layout import MokeyMemoryContainer, pack_offchip, unpack_offchip, pack_onchip_5bit, unpack_onchip_5bit
from repro.memory.compression import (
    FootprintBreakdown,
    mokey_stream_bits,
    method_footprint,
    model_memory_footprint,
)
from repro.memory.dram import DramModel
from repro.memory.sram import SramBuffer

__all__ = [
    "MokeyMemoryContainer",
    "pack_offchip",
    "unpack_offchip",
    "pack_onchip_5bit",
    "unpack_onchip_5bit",
    "FootprintBreakdown",
    "mokey_stream_bits",
    "method_footprint",
    "model_memory_footprint",
    "DramModel",
    "SramBuffer",
]
