"""Footprint and compression-ratio accounting.

Used by the Table IV column "Compression Ratio" (total memory footprint
reduction for weights + activations of a model/task) and by the
memory-compression-only deployment analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.memory.layout import COUNT_BITS, GROUP_SIZE, POSITION_BITS
from repro.transformer.config import TransformerConfig

__all__ = [
    "FootprintBreakdown",
    "mokey_stream_bits",
    "model_memory_footprint",
    "method_footprint",
]


@dataclass(frozen=True)
class FootprintBreakdown:
    """Weight/activation footprint of one model + sequence-length workload.

    Attributes:
        weight_bits: Parameter footprint in bits.
        activation_bits: Activation footprint in bits (all layers).
        label: Description of the configuration this breakdown refers to.
    """

    weight_bits: float
    activation_bits: float
    label: str = ""

    @property
    def total_bits(self) -> float:
        return self.weight_bits + self.activation_bits

    @property
    def total_mb(self) -> float:
        return self.total_bits / 8 / 2 ** 20

    @property
    def weight_mb(self) -> float:
        return self.weight_bits / 8 / 2 ** 20

    @property
    def activation_mb(self) -> float:
        return self.activation_bits / 8 / 2 ** 20

    @property
    def activation_share(self) -> float:
        """Fraction of the total footprint due to activations."""
        total = self.total_bits
        return self.activation_bits / total if total else 0.0

    def compression_ratio(self, baseline: "FootprintBreakdown") -> float:
        """Footprint reduction of this breakdown versus a baseline one."""
        if self.total_bits == 0:
            return 1.0
        return baseline.total_bits / self.total_bits


def mokey_stream_bits(
    num_values: int,
    outlier_fraction: float,
    bits_per_value: int = 4,
    group_size: int = GROUP_SIZE,
    include_pointers: bool = True,
) -> float:
    """Bits used by Mokey's off-chip container for ``num_values`` values.

    Includes the 4-bit value stream plus the outlier-pointer stream
    (6-bit count per group of 64 and a 6-bit position per outlier).
    """
    if num_values <= 0:
        return 0.0
    value_bits = num_values * bits_per_value
    if not include_pointers:
        return float(value_bits)
    groups = int(np.ceil(num_values / group_size))
    pointer_bits = groups * COUNT_BITS + outlier_fraction * num_values * POSITION_BITS
    return float(value_bits + pointer_bits)


def model_memory_footprint(
    config: TransformerConfig,
    sequence_length: int,
    weight_bits: float = 16,
    activation_bits: float = 16,
    weight_outlier_fraction: float = 0.0,
    activation_outlier_fraction: float = 0.0,
    mokey_container: bool = False,
    label: Optional[str] = None,
) -> FootprintBreakdown:
    """Footprint of one model at a given sequence length and precision.

    Args:
        config: Model architecture (full-size paper configuration).
        sequence_length: Input sequence length.
        weight_bits: Bits per parameter value.
        activation_bits: Bits per activation value.
        weight_outlier_fraction: Only used when ``mokey_container`` is True.
        activation_outlier_fraction: Only used when ``mokey_container`` is True.
        mokey_container: Account for Mokey's pointer streams instead of a
            plain dense layout.
        label: Optional label stored in the breakdown.
    """
    weight_values = config.parameter_count()
    activation_values = config.num_layers * config.activation_values_per_layer(sequence_length)

    if mokey_container:
        weight_total = mokey_stream_bits(weight_values, weight_outlier_fraction, int(weight_bits))
        activation_total = mokey_stream_bits(
            activation_values, activation_outlier_fraction, int(activation_bits)
        )
    else:
        weight_total = weight_values * weight_bits
        activation_total = activation_values * activation_bits

    return FootprintBreakdown(
        weight_bits=weight_total,
        activation_bits=activation_total,
        label=label or f"{config.name}/seq{sequence_length}",
    )


def method_footprint(
    config: TransformerConfig,
    sequence_length: int,
    weight_bits: float,
    activation_bits: float,
    method: str = "",
) -> FootprintBreakdown:
    """Footprint of a quantization method described by its bit-widths.

    This is the quantity behind Table IV's "Compression Ratio" column: the
    total (weights + activations) footprint at the method's bit-widths,
    compared against the FP32 baseline by the caller.
    """
    return model_memory_footprint(
        config,
        sequence_length,
        weight_bits=weight_bits,
        activation_bits=activation_bits,
        label=method or f"{weight_bits}w/{activation_bits}a",
    )
