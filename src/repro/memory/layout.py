"""Mokey's DRAM-friendly memory container (paper Section III-A, Fig. 5).

Off-chip, every tensor is stored as two sequential streams:

* the **quantized value stream**: one 4-bit index per value (sign + 3-bit
  Gaussian index for Gaussian values, 4-bit outlier-dictionary index for
  outliers), packed two values per byte;
* the **outlier pointer stream**: the values are conceptually split into
  groups of 64; for each group the stream stores a 6-bit outlier count
  followed by one 6-bit in-group position per outlier.

On-chip, values are expanded to a 5-bit form (1 bit dictionary select,
1 bit sign, 3 bits index) so that a single stream per tensor suffices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.tensor_dictionary import EncodedValues

__all__ = [
    "GROUP_SIZE",
    "POSITION_BITS",
    "COUNT_BITS",
    "MokeyMemoryContainer",
    "pack_offchip",
    "unpack_offchip",
    "pack_onchip_5bit",
    "unpack_onchip_5bit",
]

GROUP_SIZE = 64
#: Bits per in-group outlier position pointer (log2 of GROUP_SIZE).
POSITION_BITS = 6
#: Bits per per-group outlier count.
COUNT_BITS = 6
# Backwards-compatible private aliases.
_POSITION_BITS = POSITION_BITS
_COUNT_BITS = COUNT_BITS


@dataclass
class MokeyMemoryContainer:
    """The packed off-chip representation of one tensor.

    Attributes:
        num_values: Number of encoded values.
        value_stream: ``uint8`` array holding two 4-bit indexes per byte.
        pointer_stream: ``uint8`` array holding the bit-packed outlier
            pointer metadata (6-bit counts and positions).
        pointer_bits: Exact number of metadata bits (before byte padding).
    """

    num_values: int
    value_stream: np.ndarray
    pointer_stream: np.ndarray
    pointer_bits: int

    @property
    def value_bits(self) -> int:
        """Bits used by the 4-bit value stream."""
        return self.num_values * 4

    @property
    def total_bits(self) -> int:
        """Bits used by both streams (excluding per-tensor dictionaries)."""
        return self.value_bits + self.pointer_bits

    @property
    def total_bytes(self) -> int:
        """Bytes occupied in DRAM (streams padded to byte boundaries)."""
        return int(self.value_stream.size + self.pointer_stream.size)

    def compression_ratio(self, baseline_bits_per_value: int = 16) -> float:
        """Footprint reduction versus an FP16/FP32 baseline."""
        if self.total_bits == 0:
            return 1.0
        return self.num_values * baseline_bits_per_value / self.total_bits


class _BitWriter:
    """Append-only bit stream writer (MSB first within each byte)."""

    def __init__(self) -> None:
        self.bits: list = []

    def write(self, value: int, width: int) -> None:
        for position in range(width - 1, -1, -1):
            self.bits.append((value >> position) & 1)

    def to_bytes(self) -> Tuple[np.ndarray, int]:
        bit_count = len(self.bits)
        padded = self.bits + [0] * ((8 - bit_count % 8) % 8)
        array = np.array(padded, dtype=np.uint8).reshape(-1, 8)
        weights = 1 << np.arange(7, -1, -1, dtype=np.uint8)
        return (array * weights).sum(axis=1).astype(np.uint8), bit_count


class _BitReader:
    """Sequential bit stream reader matching :class:`_BitWriter`."""

    def __init__(self, data: np.ndarray, bit_count: int) -> None:
        bits = np.unpackbits(np.asarray(data, dtype=np.uint8))
        self.bits = bits[:bit_count]
        self.position = 0

    def read(self, width: int) -> int:
        chunk = self.bits[self.position:self.position + width]
        self.position += width
        value = 0
        for bit in chunk:
            value = (value << 1) | int(bit)
        return value


def _encoded_nibbles(encoded: EncodedValues) -> np.ndarray:
    """The 4-bit payload per value: sign+index for Gaussian, index for outliers."""
    sign_bit = (encoded.sign.ravel() < 0).astype(np.uint8)
    gaussian_nibble = (sign_bit << 3) | encoded.gaussian_index.ravel().astype(np.uint8)
    outlier_nibble = encoded.outlier_index.ravel().astype(np.uint8)
    return np.where(encoded.is_outlier.ravel(), outlier_nibble, gaussian_nibble).astype(np.uint8)


def pack_offchip(encoded: EncodedValues) -> MokeyMemoryContainer:
    """Pack an encoded tensor into the Fig. 5 off-chip container."""
    nibbles = _encoded_nibbles(encoded)
    num_values = nibbles.size

    # Two 4-bit values per byte, first value in the high nibble.
    if num_values % 2:
        nibbles = np.concatenate([nibbles, np.zeros(1, dtype=np.uint8)])
    value_stream = (nibbles[0::2] << 4) | nibbles[1::2]

    writer = _BitWriter()
    outlier_flags = encoded.is_outlier.ravel()
    for start in range(0, num_values, GROUP_SIZE):
        group = outlier_flags[start:start + GROUP_SIZE]
        positions = np.flatnonzero(group)
        writer.write(int(positions.size), _COUNT_BITS)
        for position in positions:
            writer.write(int(position), _POSITION_BITS)
    pointer_stream, pointer_bits = writer.to_bytes()

    return MokeyMemoryContainer(
        num_values=num_values,
        value_stream=value_stream.astype(np.uint8),
        pointer_stream=pointer_stream,
        pointer_bits=pointer_bits,
    )


def unpack_offchip(container: MokeyMemoryContainer) -> EncodedValues:
    """Reverse :func:`pack_offchip`, reconstructing the encoding exactly."""
    high = container.value_stream >> 4
    low = container.value_stream & 0x0F
    nibbles = np.empty(container.value_stream.size * 2, dtype=np.uint8)
    nibbles[0::2] = high
    nibbles[1::2] = low
    nibbles = nibbles[:container.num_values]

    is_outlier = np.zeros(container.num_values, dtype=bool)
    reader = _BitReader(container.pointer_stream, container.pointer_bits)
    for start in range(0, container.num_values, GROUP_SIZE):
        count = reader.read(_COUNT_BITS)
        for _ in range(count):
            position = reader.read(_POSITION_BITS)
            is_outlier[start + position] = True

    sign = np.where((nibbles >> 3) & 1, -1, 1).astype(np.int8)
    gaussian_index = (nibbles & 0x07).astype(np.int8)
    outlier_index = (nibbles & 0x0F).astype(np.int8)
    # For outlier entries the sign/gaussian fields are meaningless; normalise
    # them so a round-trip is bit-exact against the canonical encoding.
    sign = np.where(is_outlier, 1, sign).astype(np.int8)
    gaussian_index = np.where(is_outlier, 0, gaussian_index).astype(np.int8)
    outlier_index = np.where(is_outlier, outlier_index, 0).astype(np.int8)

    return EncodedValues(
        is_outlier=is_outlier,
        sign=sign,
        gaussian_index=gaussian_index,
        outlier_index=outlier_index,
    )


def pack_onchip_5bit(encoded: EncodedValues) -> np.ndarray:
    """Expand an encoding to the 5-bit on-chip form (one value per byte).

    Layout per value: bit4 = dictionary select (1 = outlier), bit3 = sign,
    bits2..0 = index.  Using one byte per value models the single-stream
    on-chip access; footprint accounting still uses 5 bits per value.
    """
    select = encoded.is_outlier.ravel().astype(np.uint8) << 4
    sign_bit = (encoded.sign.ravel() < 0).astype(np.uint8) << 3
    index = np.where(
        encoded.is_outlier.ravel(),
        encoded.outlier_index.ravel().astype(np.uint8) & 0x07,
        encoded.gaussian_index.ravel().astype(np.uint8),
    )
    # Outlier indexes are 4-bit; the top bit rides in the sign position when
    # the dictionary-select bit is set (sign is meaningless for outliers).
    outlier_msb = ((encoded.outlier_index.ravel().astype(np.uint8) >> 3) & 1) << 3
    payload = np.where(encoded.is_outlier.ravel(), outlier_msb, sign_bit)
    return (select | payload | index).astype(np.uint8)


def unpack_onchip_5bit(packed: np.ndarray) -> EncodedValues:
    """Reverse :func:`pack_onchip_5bit`."""
    packed = np.asarray(packed, dtype=np.uint8).ravel()
    is_outlier = ((packed >> 4) & 1).astype(bool)
    sign = np.where((packed >> 3) & 1, -1, 1).astype(np.int8)
    index = (packed & 0x07).astype(np.int8)
    outlier_index = ((((packed >> 3) & 1) << 3) | (packed & 0x07)).astype(np.int8)
    return EncodedValues(
        is_outlier=is_outlier,
        sign=np.where(is_outlier, 1, sign).astype(np.int8),
        gaussian_index=np.where(is_outlier, 0, index).astype(np.int8),
        outlier_index=np.where(is_outlier, outlier_index, 0).astype(np.int8),
    )
