"""On-chip SRAM buffer model (CACTI substitute).

Area and access energy follow simple capacity/interface-width scaling laws
whose coefficients are calibrated against the buffer areas the paper
reports in Table III (65 nm): a Tensor-Cores-style buffer with wide 16-bit
value interfaces costs considerably more area than a Mokey buffer of equal
capacity with 5-bit value interfaces.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SramBuffer"]

# Calibration constants (65 nm, 1 GHz), fitted to the paper's Table III:
#   Tensor Cores buffers (16-bit interface): 256KB=13.2, 512KB=16.8, 1MB=24.7 mm^2
#   Mokey buffers        (5-bit interface):  256KB=4.7,  512KB=8.0,  1MB=14.6 mm^2
_AREA_PER_MB_BASE = 11.5          # mm^2 per MB, width-independent part
_AREA_PER_MB_PER_BIT = 0.24       # mm^2 per MB per interface bit
_AREA_INTERFACE_PER_BIT = 0.58    # mm^2 per interface bit (banking/periphery)

_READ_ENERGY_PJ_PER_BIT = 0.035   # per bit read at the bank interface
_WRITE_ENERGY_PJ_PER_BIT = 0.045
_LEAKAGE_W_PER_MB = 0.015


@dataclass(frozen=True)
class SramBuffer:
    """An on-chip scratchpad buffer.

    Attributes:
        capacity_bytes: Usable capacity.
        interface_bits: Bits per stored value at the datapath interface
            (16 for FP16 designs, 5 for Mokey's on-chip encoding).
    """

    capacity_bytes: int
    interface_bits: int = 16

    @property
    def capacity_mb(self) -> float:
        return self.capacity_bytes / 2 ** 20

    @property
    def area_mm2(self) -> float:
        """Estimated buffer area (banks + periphery + interconnect)."""
        per_mb = _AREA_PER_MB_BASE + _AREA_PER_MB_PER_BIT * self.interface_bits
        return self.capacity_mb * per_mb + _AREA_INTERFACE_PER_BIT * self.interface_bits

    def read_energy_joules(self, bits: float) -> float:
        """Energy to read ``bits`` from the buffer."""
        return bits * _READ_ENERGY_PJ_PER_BIT * 1e-12

    def write_energy_joules(self, bits: float) -> float:
        """Energy to write ``bits`` into the buffer."""
        return bits * _WRITE_ENERGY_PJ_PER_BIT * 1e-12

    def leakage_energy_joules(self, seconds: float) -> float:
        """Static leakage over an execution interval."""
        return _LEAKAGE_W_PER_MB * self.capacity_mb * seconds

    def effective_value_capacity(self, bits_per_value: float) -> int:
        """How many values of ``bits_per_value`` bits fit in the buffer."""
        if bits_per_value <= 0:
            raise ValueError("bits_per_value must be positive")
        return int(self.capacity_bytes * 8 // bits_per_value)
