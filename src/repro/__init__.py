"""Mokey reproduction library.

Reproduction of "Mokey: Enabling Narrow Fixed-Point Inference for
Out-of-the-Box Floating-Point Transformer Models" (ISCA 2022).

The package is organised as follows:

``repro.core``
    The paper's contribution: Golden-Dictionary quantization, exponential
    index-domain compute, outlier handling, and whole-model quantization.
``repro.transformer``
    A from-scratch NumPy transformer inference substrate (BERT-style
    encoders) together with a synthetic model zoo and synthetic evaluation
    tasks used for fidelity measurements.
``repro.baselines``
    Competing quantization methods used in the paper's Table IV
    (GOBO, Q8BERT, I-BERT, Q-BERT, TernaryBERT).
``repro.schemes``
    The pluggable quantization-scheme registry: every method's numerics
    *and* accelerator cost model behind one interface, looked up by name.
``repro.memory``
    Memory-system substrate: the Mokey DRAM container, compression
    accounting, a DDR4 main-memory model and an SRAM buffer model.
``repro.accelerator``
    Staged accelerator simulation (datapath / memory / overlap models):
    FP16 Tensor-Cores baseline, the GOBO accelerator and the Mokey
    accelerator, plus the memory-compression-only deployment modes.
``repro.experiments``
    The scenario/campaign sweep engine: grid expansion over models, tasks,
    sequence lengths, batch sizes, schemes, designs and buffer sizes, with
    an in-process result cache, ``concurrent.futures`` fan-out, and
    accuracy campaigns joining task fidelity to the hardware results.
``repro.analysis``
    Footprint analysis, fidelity tables and report formatting shared by
    the benchmarks and the CLI.
"""

from repro.core.golden_dictionary import GoldenDictionary, generate_golden_dictionary
from repro.core.quantizer import MokeyQuantizer, QuantizedTensor
from repro.core.model_quantizer import MokeyModelQuantizer, QuantizationMode
from repro.core.exponential_fit import ExponentialFit, fit_exponential
from repro.transformer.config import TransformerConfig
from repro.transformer.model import TransformerModel
from repro.transformer import model_zoo
from repro.schemes import QuantizationScheme, available_schemes, get_scheme, register_scheme
from repro.experiments import (
    AxisGrid,
    CampaignSpec,
    Enrichments,
    ExecutionPolicy,
    FidelityResult,
    Scenario,
    evaluate_fidelity,
    expand_grid,
    iter_campaign,
    run_campaign,
    run_spec,
)
from repro.registry import Registry, RegistryError, get_registry, registry_kinds

__version__ = "1.0.0"

__all__ = [
    "GoldenDictionary",
    "generate_golden_dictionary",
    "MokeyQuantizer",
    "QuantizedTensor",
    "MokeyModelQuantizer",
    "QuantizationMode",
    "ExponentialFit",
    "fit_exponential",
    "TransformerConfig",
    "TransformerModel",
    "model_zoo",
    "QuantizationScheme",
    "available_schemes",
    "get_scheme",
    "register_scheme",
    "FidelityResult",
    "Scenario",
    "evaluate_fidelity",
    "expand_grid",
    "run_campaign",
    "AxisGrid",
    "CampaignSpec",
    "Enrichments",
    "ExecutionPolicy",
    "iter_campaign",
    "run_spec",
    "Registry",
    "RegistryError",
    "get_registry",
    "registry_kinds",
    "__version__",
]
