"""``repro`` command-line interface.

Drives the campaign engine (:mod:`repro.experiments`) from the shell, with
results persisted to an on-disk :class:`~repro.experiments.store.ArtifactStore`
so repeated runs only simulate new grid points::

    repro campaign run --models bert-base bert-large --designs mokey \\
        --buffer-kb 256 512 --executor process
    repro campaign run --spec spec.json --progress
    repro campaign resume --spec spec.json   # skip already-persisted keys
    repro campaign run --paper-workloads --with-accuracy
    repro campaign run --models bert-base --with-measured-stats
    repro campaign run --models bert-base --store-backend sqlite
    repro campaign report --design mokey --format csv
    repro campaign report --where "total_cycles<=1e9" --order-by energy_joules --top 10
    repro campaign report --group-by model design --order-by -count
    repro campaign list
    repro campaign clean --yes
    repro store migrate old-store new-store --to-backend sqlite
    repro store stats .repro-store   # counts/coverage without payloads
    repro serve-sim --schemes mokey-oc fp16 --rate 100 --requests 10000
    repro serve-sim --trace bursty --policy max-batch --max-batch 16 --slo-ms 50
    repro serve --port 8321 --workers 4       # campaign service daemon
    repro submit --spec spec.json --wait      # HTTP submit to the daemon
    repro status                              # all service jobs
    repro status campaign-0001                # one job, sharded progress
    repro results campaign-0001 --output out.ndjson
    repro cancel campaign-0001
    repro registry list              # the nine pluggable-axis registries
    repro registry list schemes      # one registry's entries, described
    repro table1                 # the paper's eight Table I fidelity rows
    repro table1 --joint         # fidelity next to speedup/energy (Table IV style)

(or ``python -m repro ...`` without installing the console script.)

Axis flags and ``--spec FILE`` both build the same declarative
:class:`~repro.experiments.spec.CampaignSpec`; with ``--spec`` the axis
flags are ignored and the execution flags (``--executor``, ``--workers``,
``--chunksize``, ``--store``) override the spec's execution policy.
Results stream: each scenario is appended to the store the moment it
completes, so an interrupted run (Ctrl-C, ``--limit``) is resumed by
``repro campaign resume`` — or simply re-running — with persisted keys
served from disk.

The store location is ``--store DIR``, the spec's execution policy, the
``REPRO_STORE`` environment variable, or ``./.repro-store`` in that order
of precedence.  ``--store-backend {jsonl,sqlite}`` picks the storage
engine (default: whatever layout the directory already holds, JSONL for
a fresh one); with SQLite, ``campaign report``/``list`` filters,
grouping, ordering and ``--top`` are pushed down into the database
instead of deserializing every record.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.fidelity import joint_rows, table1_rows
from repro.analysis.reporting import RECORD_FORMATS, format_records
from repro.experiments import (
    EXECUTORS,
    AxisGrid,
    CampaignSpec,
    Enrichments,
    ExecutionPolicy,
    MeasurementSettings,
    ResultCache,
    ScenarioRecord,
    UnsupportedSchemeError,
    available_designs,
    available_store_backends,
    iter_campaign,
    migrate_store,
    open_store,
    parse_filter,
    run_spec,
    supported_accuracy_schemes,
    supports_accuracy,
)
from repro.experiments import SCHEMA_VERSION
from repro.registry import RegistryError, get_registry, registry_kinds
from repro.schemes import available_schemes
from repro.service import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    Coordinator,
    ServiceClient,
    ServiceError,
    make_server,
    run_daemon,
)
from repro.serving import (
    POLICY_KINDS,
    TRACE_GENERATORS,
    PolicySpec,
    ServingSpec,
    TraceSpec,
    iter_serving,
)
from repro.accelerator.workloads import TASK_SEQUENCE_LENGTHS
from repro.transformer.model_zoo import MODEL_CONFIGS, PAPER_MODELS

__all__ = ["main"]

KB = 1024

DEFAULT_STORE = ".repro-store"


def _default_store() -> str:
    return os.environ.get("REPRO_STORE", DEFAULT_STORE)


def _parse_sequence_length(value: str) -> Optional[int]:
    """``"none"``/``"default"`` → task default; otherwise a positive int."""
    if value.lower() in ("none", "default"):
        return None
    return int(value)


def _parse_scheme(value: str) -> Optional[str]:
    """``"none"``/``"native"`` → the design's own scheme."""
    if value.lower() in ("none", "native"):
        return None
    return value


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="artifact store directory (default: $REPRO_STORE or ./.repro-store)",
    )
    parser.add_argument(
        "--store-backend",
        choices=available_store_backends(),
        default=None,
        help="storage engine for the store directory (default: whatever "
        "layout the directory already holds, jsonl for a fresh one)",
    )


def _open_cli_store(args: argparse.Namespace):
    """Open the command's store under the chosen (or detected) backend."""
    return open_store(
        args.store or _default_store(), backend=getattr(args, "store_backend", None)
    )


def _add_format_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format",
        choices=RECORD_FORMATS,
        default="table",
        help="output format for the result records (default: table)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the formatted records to FILE instead of stdout",
    )


def _add_filter_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default=None, help="only records for this model")
    parser.add_argument("--task", default=None, help="only records for this task")
    parser.add_argument("--design", default=None, help="only records for this design")
    parser.add_argument(
        "--scheme",
        default=None,
        help="only records whose scheme column matches (the override if set, else the design name)",
    )
    parser.add_argument("--batch-size", type=int, default=None, help="only this batch size")
    parser.add_argument("--buffer-kb", type=int, default=None, help="only this buffer size (KB)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mokey (ISCA 2022) reproduction: campaign runner and result store.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    campaign = commands.add_parser("campaign", help="run and inspect simulation campaigns")
    actions = campaign.add_subparsers(dest="action", required=True)

    run = actions.add_parser(
        "run",
        help="simulate a scenario grid (store hits are not re-simulated)",
        description=(
            "Expand the axis flags — or load a declarative --spec file — into "
            "a scenario grid and simulate it, streaming each result into the "
            "artifact store as it completes. Grid points already stored are "
            "served from disk, so an identical second run simulates nothing."
        ),
    )
    run.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="load a CampaignSpec JSON file instead of the axis flags "
        "(axis flags are ignored; execution flags override the spec's policy)",
    )
    run.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="stop after N records (everything emitted stays persisted; "
        "'repro campaign resume' picks up where the run stopped)",
    )
    run.add_argument(
        "--progress",
        action="store_true",
        help="print one streaming progress line per completed scenario to stderr",
    )
    run.add_argument(
        "--models",
        nargs="+",
        default=["bert-base"],
        choices=sorted(MODEL_CONFIGS),
        metavar="MODEL",
        help=f"model-zoo axis (choices: {', '.join(sorted(MODEL_CONFIGS))})",
    )
    run.add_argument("--tasks", nargs="+", default=["mnli"], metavar="TASK", help="task axis")
    run.add_argument(
        "--sequence-lengths",
        nargs="+",
        type=_parse_sequence_length,
        default=[None],
        metavar="LEN",
        help="sequence-length axis; 'none' uses each task's default length",
    )
    run.add_argument(
        "--batch-sizes", nargs="+", type=int, default=[1], metavar="N", help="batch-size axis"
    )
    run.add_argument(
        "--schemes",
        nargs="+",
        type=_parse_scheme,
        default=[None],
        metavar="SCHEME",
        help="quantization-scheme axis; 'none' keeps each design's own scheme",
    )
    run.add_argument(
        "--designs",
        nargs="+",
        default=["mokey"],
        metavar="DESIGN",
        help=f"accelerator-design axis (choices: {', '.join(available_designs())})",
    )
    run.add_argument(
        "--buffer-kb",
        nargs="+",
        type=int,
        default=[512],
        metavar="KB",
        help="on-chip buffer capacity axis, in KB",
    )
    run.add_argument(
        "--paper-workloads",
        action="store_true",
        help="use the paper's Table I (model, task, seq) pairs instead of "
        "crossing --models/--tasks/--sequence-lengths",
    )
    run.add_argument(
        "--executor",
        choices=EXECUTORS,
        default=None,
        help="how to fan the grid out (process = fastest for large grids; "
        "default: the spec's policy, else thread)",
    )
    run.add_argument(
        "--workers", type=int, default=None, metavar="N", help="pool width (default: automatic)"
    )
    run.add_argument(
        "--chunksize",
        type=int,
        default=None,
        metavar="N",
        help="scenarios per process-pool work item (process executor only)",
    )
    run.add_argument(
        "--with-accuracy",
        action="store_true",
        help="also evaluate task fidelity per (model, task, scheme) and join it "
        "to each record (one quantization serves every seq/batch/buffer point)",
    )
    run.add_argument(
        "--with-measured-stats",
        action="store_true",
        help="also execute one encoder layer per (model, seq, batch) through the "
        "vectorized index-domain engine and join the measured Gaussian/outlier "
        "operation counts to each record, next to the analytic ones",
    )
    run.add_argument(
        "--measured-scope",
        choices=("layer", "model"),
        default=None,
        metavar="SCOPE",
        help="what the measured stats cover: 'layer' (one encoder layer, the "
        "default) or 'model' (the whole encoder stack, every layer's "
        "index-domain output feeding the next); implies --with-measured-stats",
    )
    run.add_argument(
        "--no-store", action="store_true", help="do not read or write the artifact store"
    )
    _add_store_argument(run)
    _add_format_arguments(run)

    resume = actions.add_parser(
        "resume",
        help="resume an interrupted spec-driven campaign from its store",
        description=(
            "Re-run a CampaignSpec against its artifact store: scenarios whose "
            "keys are already persisted are served from disk, only the missing "
            "ones simulate, and the final record set is bit-identical to an "
            "uninterrupted run."
        ),
    )
    resume.add_argument("--spec", required=True, metavar="FILE", help="CampaignSpec JSON file")
    resume.add_argument(
        "--executor",
        choices=EXECUTORS,
        default=None,
        help="override the spec's executor",
    )
    resume.add_argument(
        "--workers", type=int, default=None, metavar="N", help="pool width (default: automatic)"
    )
    resume.add_argument(
        "--chunksize",
        type=int,
        default=None,
        metavar="N",
        help="scenarios per process-pool work item (process executor only)",
    )
    resume.add_argument(
        "--progress",
        action="store_true",
        help="print one streaming progress line per completed scenario to stderr",
    )
    _add_store_argument(resume)
    _add_format_arguments(resume)

    report = actions.add_parser(
        "report",
        help="format stored records (filters/grouping push down into the store)",
        description=(
            "Render records from the artifact store, optionally filtered, "
            "grouped, ordered and limited. Filters, --group-by, --order-by "
            "and --top are pushed down into the store backend — with SQLite "
            "they run server-side over indexed columns instead of "
            "deserializing every record."
        ),
    )
    _add_store_argument(report)
    _add_filter_arguments(report)
    report.add_argument(
        "--where",
        action="append",
        default=[],
        metavar="FIELD<OP>VALUE",
        help="pushdown filter on a scenario axis or result metric, e.g. "
        "model=bert-base or 'total_cycles<=1e9' (ops: == != < <= > >=; "
        "repeatable, all must match)",
    )
    report.add_argument(
        "--group-by",
        nargs="+",
        default=None,
        metavar="AXIS",
        help="aggregate per distinct axis combination instead of listing "
        "records (columns: count, with_fidelity, with_measured, "
        "min/mean of total_cycles and energy_joules)",
    )
    report.add_argument(
        "--order-by",
        default=None,
        metavar="FIELD",
        help="order records (or grouped rows) by this field; descending via "
        "'~FIELD' or 'FIELD:desc' (or '-FIELD', which argparse only "
        "accepts in the equals form --order-by=-FIELD), e.g. "
        "--order-by ~total_cycles",
    )
    report.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="N",
        help="keep only the first N records (or grouped rows)",
    )
    _add_format_arguments(report)

    list_cmd = actions.add_parser(
        "list",
        help="summarise the artifact store",
        description="Show record counts per model/design in the artifact store.",
    )
    _add_store_argument(list_cmd)

    clean = actions.add_parser(
        "clean",
        help="delete the artifact store's records",
        description="Delete every stored record (requires --yes).",
    )
    clean.add_argument("--yes", action="store_true", help="actually delete (no prompt)")
    _add_store_argument(clean)

    store_cmd = commands.add_parser(
        "store",
        help="manage artifact stores (backend migration)",
        description=(
            "Operations on artifact-store directories themselves, "
            "independent of any campaign."
        ),
    )
    store_actions = store_cmd.add_subparsers(dest="action", required=True)
    migrate = store_actions.add_parser(
        "migrate",
        help="copy every record of one store into another (e.g. jsonl -> sqlite)",
        description=(
            "Stream every readable record of SOURCE into DEST, preserving "
            "keys, insertion order and record digests exactly. Unreadable "
            "source records are skipped and reported; keys already in DEST "
            "merge under the normal upgrade semantics."
        ),
    )
    migrate.add_argument("source", metavar="SOURCE", help="source store directory")
    migrate.add_argument("dest", metavar="DEST", help="destination store directory")
    migrate.add_argument(
        "--from-backend",
        choices=available_store_backends(),
        default=None,
        help="backend of SOURCE (default: detected from its layout)",
    )
    migrate.add_argument(
        "--to-backend",
        choices=available_store_backends(),
        default=None,
        help="backend of DEST (default: detected from its layout, jsonl if fresh)",
    )
    stats = store_actions.add_parser(
        "stats",
        help="summarise a store without deserializing record payloads",
        description=(
            "Report a store directory's backend, schema version, record "
            "count, fidelity/measured coverage and skipped-line count. "
            "Counts come from one grouped pushdown query — with SQLite "
            "they run server-side over indexed columns, no payloads read."
        ),
    )
    stats.add_argument("path", metavar="PATH", help="store directory to summarise")
    stats.add_argument(
        "--store-backend",
        choices=available_store_backends(),
        default=None,
        help="backend of PATH (default: detected from its layout)",
    )
    stats.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (default: table)",
    )

    registry = commands.add_parser(
        "registry",
        help="inspect the pluggable-axis registries",
        description=(
            "The unified registry surface: every pluggable axis of the "
            "campaign grid and the serving simulator (schemes, designs, "
            "models, tasks, engines, store backends, arrival traces, "
            "batching policies, service job states) behind one "
            "names/get/describe protocol."
        ),
    )
    registry_actions = registry.add_subparsers(dest="action", required=True)
    registry_list = registry_actions.add_parser(
        "list",
        help="list all registries, or one registry's entries with descriptions",
    )
    registry_list.add_argument(
        "kind",
        nargs="?",
        default=None,
        help=f"registry kind to expand (choices: {', '.join(registry_kinds())})",
    )
    registry_list.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (default: table)",
    )

    table1 = commands.add_parser(
        "table1",
        help="reproduce the paper's Table I task-fidelity rows",
        description=(
            "Run the accuracy campaign over the paper's eight Table I "
            "(model, task) pairs — plus the Tensor Cores baseline for the "
            "joint view — and render the fidelity rows next to the paper's "
            "reported values. Results persist to the artifact store, so a "
            "second invocation simulates and evaluates nothing."
        ),
    )
    table1.add_argument(
        "--scheme",
        default="mokey",
        metavar="SCHEME",
        help="numerics scheme to evaluate (default: mokey)",
    )
    table1.add_argument(
        "--joint",
        action="store_true",
        help="render the joint accuracy-vs-speedup/energy view (Table IV style) "
        "instead of the Table I fidelity rows",
    )
    table1.add_argument(
        "--executor",
        choices=EXECUTORS,
        default="thread",
        help="how to fan the grid out",
    )
    table1.add_argument(
        "--workers", type=int, default=None, metavar="N", help="pool width (default: automatic)"
    )
    table1.add_argument(
        "--no-store", action="store_true", help="do not read or write the artifact store"
    )
    _add_store_argument(table1)
    _add_format_arguments(table1)

    serve = commands.add_parser(
        "serve-sim",
        help="replay a seeded request-arrival trace through the batching "
        "simulator (p50/p99 latency, goodput, energy-per-request)",
        description=(
            "Generate a seeded arrival trace, form batches under a dynamic "
            "batching policy, and replay them against the accelerator "
            "cycle/energy models for every scheme × design combo. Batch "
            "size is emergent — each distinct formed size costs one real "
            "simulation, memoised through the artifact store, so a "
            "million-request trace needs only a handful of sims and a "
            "re-run over a warm store simulates nothing."
        ),
    )
    serve.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="load a ServingSpec JSON file instead of the flags below "
        "(execution flags still override the spec's policy)",
    )
    serve.add_argument(
        "--model",
        default="bert-base",
        choices=sorted(MODEL_CONFIGS),
        metavar="MODEL",
        help=f"served model (choices: {', '.join(sorted(MODEL_CONFIGS))})",
    )
    serve.add_argument("--task", default="mnli", metavar="TASK", help="served task")
    serve.add_argument(
        "--sequence-length",
        type=_parse_sequence_length,
        default=None,
        metavar="LEN",
        help="request sequence length; 'none' (default) uses the task's",
    )
    serve.add_argument(
        "--schemes",
        nargs="+",
        type=_parse_scheme,
        default=[None],
        metavar="SCHEME",
        help="quantization schemes to compare; 'none' keeps each design's own",
    )
    serve.add_argument(
        "--designs",
        nargs="+",
        default=["mokey"],
        metavar="DESIGN",
        help=f"accelerator designs (choices: {', '.join(available_designs())})",
    )
    serve.add_argument(
        "--buffer-kb",
        type=int,
        default=512,
        metavar="KB",
        help="on-chip buffer capacity per accelerator, in KB (default: 512)",
    )
    serve.add_argument(
        "--trace",
        default="poisson",
        metavar="KIND",
        help=f"arrival-trace kind (choices: {', '.join(sorted(TRACE_GENERATORS))})",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=100.0,
        metavar="RPS",
        help="mean request arrival rate, requests/second (default: 100)",
    )
    serve.add_argument(
        "--requests",
        type=int,
        default=10_000,
        metavar="N",
        help="trace length in requests (default: 10000)",
    )
    serve.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="SEED",
        help="trace RNG seed; same seed + spec = bit-identical metrics",
    )
    serve.add_argument(
        "--trace-param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="trace-kind parameter, e.g. burst_factor=6 (repeatable; see "
        "'repro registry list traces')",
    )
    serve.add_argument(
        "--policy",
        default="timeout",
        metavar="KIND",
        help=f"batching policy (choices: {', '.join(sorted(POLICY_KINDS))})",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=8,
        metavar="N",
        help="largest batch a policy may form (default: 8)",
    )
    serve.add_argument(
        "--timeout-ms",
        type=float,
        default=10.0,
        metavar="MS",
        help="timeout policy: longest the queue head waits for fill (default: 10)",
    )
    serve.add_argument(
        "--accelerators",
        type=int,
        default=1,
        metavar="N",
        help="identical engines served from one queue (default: 1)",
    )
    serve.add_argument(
        "--slo-ms",
        type=float,
        default=None,
        metavar="MS",
        help="latency objective; goodput counts only requests within it",
    )
    serve.add_argument(
        "--executor",
        choices=EXECUTORS,
        default=None,
        help="how to fan the scheme × design combos out (default: the "
        "spec's policy, else thread); all three are bit-identical",
    )
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N", help="pool width (default: automatic)"
    )
    serve.add_argument(
        "--progress",
        action="store_true",
        help="print one streaming progress line per completed combo to stderr",
    )
    serve.add_argument(
        "--no-store", action="store_true", help="do not read or write the artifact store"
    )
    _add_store_argument(serve)
    _add_format_arguments(serve)

    def _add_url_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--url",
            default=None,
            metavar="URL",
            help="campaign-service URL (default: $REPRO_SERVICE_URL or "
            f"http://{DEFAULT_HOST}:{DEFAULT_PORT})",
        )

    serve_daemon = commands.add_parser(
        "serve",
        help="run the campaign service: an HTTP daemon executing submitted "
        "specs as sharded multi-worker jobs over one shared store",
        description=(
            "Start a long-running HTTP daemon (pure stdlib). Submitted "
            "CampaignSpecs are split into deterministic shards fanned out "
            "to worker processes, all appending to one shared store; "
            "content-addressed resume makes workers disposable — kill one "
            "mid-shard and its replacement resumes from the store, with "
            "final keys and record digests bit-identical to a "
            "single-process run. SIGTERM/SIGINT drains the worker pool "
            "and flushes in-flight shard writes before exiting."
        ),
    )
    serve_daemon.add_argument(
        "--host", default=DEFAULT_HOST, help=f"bind address (default: {DEFAULT_HOST})"
    )
    serve_daemon.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        metavar="PORT",
        help=f"bind port (default: {DEFAULT_PORT}; 0 picks an ephemeral port)",
    )
    serve_daemon.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="default worker processes per campaign job (default: 2; a "
        "submission's own 'workers' wins)",
    )
    serve_daemon.add_argument(
        "--verbose", action="store_true", help="log each HTTP request to stderr"
    )
    _add_store_argument(serve_daemon)

    submit = commands.add_parser(
        "submit",
        help="submit a campaign/serving spec to a running campaign service",
        description=(
            "POST a CampaignSpec or ServingSpec JSON file to the daemon and "
            "print the job id (the kind is auto-detected from the payload). "
            "With --wait, block until the job is terminal and exit 0 only "
            "on completion."
        ),
    )
    submit.add_argument("--spec", required=True, metavar="FILE", help="spec JSON file")
    submit.add_argument(
        "--kind",
        choices=("campaign", "serving"),
        default=None,
        help="force the job kind (default: auto-detected from the payload)",
    )
    submit.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for this job (default: the daemon's --workers)",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="poll until the job is terminal; exit 0 only if it completed",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="--wait deadline in seconds (default: 3600)",
    )
    _add_url_argument(submit)

    status = commands.add_parser(
        "status",
        help="show campaign-service job progress (all jobs, or one in full)",
        description=(
            "Without an id: one summary line per submitted job. With an id: "
            "the job's full structured status as JSON — state, aggregate "
            "progress, and per-shard completed/total/restarts/pid."
        ),
    )
    status.add_argument(
        "id", nargs="?", default=None, metavar="ID", help="job id (default: list all)"
    )
    status.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="listing format when no id is given (default: table)",
    )
    _add_url_argument(status)

    results = commands.add_parser(
        "results",
        help="stream a service job's completed records as NDJSON",
        description=(
            "Fetch the job's completed records as newline-delimited JSON in "
            "deterministic grid order (not store insertion order), each "
            "line carrying the record's content key and digest. Usable "
            "mid-run: scenarios not yet persisted are simply absent."
        ),
    )
    results.add_argument("id", metavar="ID", help="job id")
    results.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the NDJSON lines to FILE instead of stdout",
    )
    _add_url_argument(results)

    cancel = commands.add_parser(
        "cancel",
        help="cancel a campaign-service job (persisted records remain)",
        description=(
            "Ask the job's workers to stop after their in-flight record. "
            "Everything already persisted stays in the store; resubmitting "
            "the same spec later resumes from it."
        ),
    )
    cancel.add_argument("id", metavar="ID", help="job id")
    _add_url_argument(cancel)

    return parser


def _validate_run_axes(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    for task in args.tasks:
        if task not in TASK_SEQUENCE_LENGTHS:
            parser.error(
                f"unknown task {task!r} (choices: {', '.join(sorted(TASK_SEQUENCE_LENGTHS))})"
            )
    known_designs = set(available_designs())
    for design in args.designs:
        if design not in known_designs:
            parser.error(
                f"unknown design {design!r} (choices: {', '.join(sorted(known_designs))})"
            )
    known_schemes = set(available_schemes())
    for scheme in args.schemes:
        if scheme is not None and scheme not in known_schemes:
            parser.error(
                f"unknown scheme {scheme!r} (choices: none, {', '.join(sorted(known_schemes))})"
            )


def _emit(records_text: str, summary: str, output: Optional[str]) -> None:
    """Records go to ``--output`` (or stdout); the summary goes to the
    other stream so machine-readable output stays clean."""
    if output is not None:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(records_text + "\n")
        print(summary)
    else:
        print(records_text)
        print(summary, file=sys.stderr)


def _load_spec(path: str) -> CampaignSpec:
    try:
        return CampaignSpec.load(path)
    except OSError as exc:
        print(f"error: cannot read spec {path!r}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    except (json.JSONDecodeError, TypeError, ValueError) as exc:
        print(f"error: spec {path!r} does not parse as a CampaignSpec: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _spec_from_args(parser: argparse.ArgumentParser, args: argparse.Namespace) -> CampaignSpec:
    """Build the campaign spec: from ``--spec FILE`` or the axis flags.

    Execution flags (``--executor``/``--workers``/``--chunksize``) and the
    enrichment flags override the spec's own policy either way.
    """
    if getattr(args, "spec", None):
        spec = _load_spec(args.spec)
    else:
        _validate_run_axes(parser, args)
        workloads = None
        if args.paper_workloads:
            workloads = tuple(
                (model, task, seq) for (model, task, seq, _head) in PAPER_MODELS
            )
        spec = CampaignSpec(
            name="cli",
            axes=AxisGrid(
                models=tuple(args.models),
                tasks=tuple(args.tasks),
                sequence_lengths=tuple(args.sequence_lengths),
                batch_sizes=tuple(args.batch_sizes),
                schemes=tuple(args.schemes),
                designs=tuple(args.designs),
                buffer_bytes=tuple(size * KB for size in args.buffer_kb),
                workloads=workloads,
            ),
        )
    execution_overrides = {}
    if getattr(args, "executor", None) is not None:
        execution_overrides["executor"] = args.executor
    if getattr(args, "workers", None) is not None:
        execution_overrides["max_workers"] = args.workers
    if getattr(args, "chunksize", None) is not None:
        execution_overrides["chunksize"] = args.chunksize
    if execution_overrides:
        spec = spec.with_execution(**execution_overrides)
    enrichment_overrides = {}
    if getattr(args, "with_accuracy", False):
        enrichment_overrides["accuracy"] = True
    if getattr(args, "with_measured_stats", False):
        enrichment_overrides["measured"] = True
    measured_scope = getattr(args, "measured_scope", None)
    if measured_scope is not None:
        base_settings = spec.enrichments.measurement_settings or MeasurementSettings()
        enrichment_overrides["measured"] = True
        enrichment_overrides["measurement_settings"] = replace(
            base_settings, scope=measured_scope
        )
    if enrichment_overrides:
        spec = spec.with_enrichments(**enrichment_overrides)
    return spec


def _resolve_spec_store(args: argparse.Namespace, spec: CampaignSpec) -> CampaignSpec:
    """Pin the spec's store: ``--store`` > spec policy > $REPRO_STORE > default.

    ``--no-store`` clears it.  The returned spec is what actually runs —
    the CLI drives ``iter_campaign`` purely through the execution policy,
    so the spec's ``resume`` field is honoured exactly as in the library.
    """
    if getattr(args, "no_store", False):
        return spec.with_execution(store=None)
    changes = {"store": args.store or spec.execution.store or _default_store()}
    backend = getattr(args, "store_backend", None)
    if backend is not None:
        changes["store_backend"] = backend
    return spec.with_execution(**changes)


def _stream_records(
    spec: CampaignSpec,
    limit: Optional[int] = None,
    progress_to_stderr: bool = False,
) -> Tuple[List[ScenarioRecord], Optional[object]]:
    """Drain ``iter_campaign``, optionally stopping after ``limit`` records.

    Everything emitted before the stop is already persisted (the engine
    appends to the store before yielding), which is exactly what makes
    ``--limit``/Ctrl-C resumable.
    """
    records: List[ScenarioRecord] = []
    last_progress = None
    events = iter_campaign(spec)
    try:
        for record, progress in events:
            records.append(record)
            last_progress = progress
            if progress_to_stderr:
                print(f"{progress} {record.scenario.label}", file=sys.stderr)
            if limit is not None and progress.completed >= limit:
                break
    finally:
        events.close()
    return records, last_progress


def _measured_noun(spec: CampaignSpec) -> str:
    """What one measured execution covered: a layer, or a whole model."""
    settings = spec.enrichments.measurement_settings
    return "models" if settings is not None and settings.scope == "model" else "layers"


def _run_summary(
    spec: CampaignSpec,
    records: List[ScenarioRecord],
    last_progress,
    elapsed: float,
) -> str:
    simulated = sum(1 for record in records if not record.cached)
    cached = len(records) - simulated
    # The CLI builds a fresh cache per invocation (inside iter_campaign),
    # so every cache hit on a resuming run came from the store; without a
    # store — or with resume=false — nothing does.
    store = spec.execution.store
    from_store = cached if store is not None and spec.execution.resume else 0
    total = last_progress.total if last_progress is not None else len(records)
    summary = (
        f"{len(records)} records: {simulated} simulated, "
        f"{cached} cache hits "
        f"({from_store} from store)"
        + (
            f", {last_progress.fidelity_evaluated} fidelity evaluated"
            if spec.enrichments.accuracy and last_progress is not None
            else ""
        )
        + (
            f", {last_progress.measured_evaluated} "
            f"{_measured_noun(spec)} measured"
            if spec.enrichments.measured and last_progress is not None
            else ""
        )
        + (f" (interrupted after {len(records)}/{total})" if len(records) < total else "")
        + f" in {elapsed:.2f}s [executor={spec.execution.executor}"
        + ("]" if store is None else f", store={store}]")
    )
    return summary


def _cmd_run(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    spec = _resolve_spec_store(args, _spec_from_args(parser, args))
    started = time.perf_counter()
    try:
        records, last_progress = _stream_records(
            spec, limit=args.limit, progress_to_stderr=args.progress
        )
    except (UnsupportedSchemeError, RegistryError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    summary = _run_summary(spec, records, last_progress, elapsed)
    _emit(format_records([r.to_row() for r in records], args.format), summary, args.output)
    return 0


def _cmd_resume(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    # Resuming is the whole point of this command, whatever the spec says.
    spec = _resolve_spec_store(args, _spec_from_args(parser, args)).with_execution(resume=True)
    already_stored = len(open_store(spec.execution.store, backend=spec.execution.store_backend))
    started = time.perf_counter()
    try:
        records, last_progress = _stream_records(spec, progress_to_stderr=args.progress)
    except (UnsupportedSchemeError, RegistryError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    summary = (
        f"resumed from {already_stored} stored records: "
        + _run_summary(spec, records, last_progress, elapsed)
    )
    _emit(format_records([r.to_row() for r in records], args.format), summary, args.output)
    return 0


def _cmd_registry_list(args: argparse.Namespace) -> int:
    try:
        if args.kind is None:
            if args.format == "json":
                payload = {
                    kind: list(get_registry(kind).names()) for kind in registry_kinds()
                }
                print(json.dumps(payload, indent=2, sort_keys=True))
            else:
                for kind in registry_kinds():
                    registry = get_registry(kind)
                    print(f"{kind} ({len(registry)}): {', '.join(registry.names())}")
            return 0
        registry = get_registry(args.kind)
        descriptions = registry.describe()
        if args.format == "json":
            print(json.dumps(descriptions, indent=2, sort_keys=True))
        else:
            print(f"{registry.kind} registry — {len(registry)} entries")
            width = max(len(name) for name in descriptions) if descriptions else 0
            for name, description in descriptions.items():
                print(f"  {name:<{width}}  {description}")
        return 0
    except RegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_table1(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    if not supports_accuracy(args.scheme):
        known = ", ".join(supported_accuracy_schemes())
        print(
            f"error: scheme {args.scheme!r} has no accuracy-side numerics evaluator "
            f"(choices: {known})",
            file=sys.stderr,
        )
        return 2
    # The target rows run the scheme's numerics on the Mokey design with
    # fidelity; the Tensor Cores baseline rides along hardware-only (its
    # fidelity is never read) so --joint can pair speedup/energy.
    scheme = None if args.scheme == "mokey" else args.scheme
    workloads = tuple((model, task, seq) for (model, task, seq, _head) in PAPER_MODELS)
    store = None if args.no_store else _open_cli_store(args)
    cache = ResultCache(store=store)
    execution = ExecutionPolicy(executor=args.executor, max_workers=args.workers)
    started = time.perf_counter()
    target = run_spec(
        CampaignSpec(
            name="table1",
            axes=AxisGrid(workloads=workloads, schemes=(scheme,), designs=("mokey",)),
            enrichments=Enrichments(accuracy=True),
            execution=execution,
        ),
        cache=cache,
    )
    baseline = run_spec(
        CampaignSpec(
            name="table1-baseline",
            axes=AxisGrid(workloads=workloads, designs=("tensor-cores",)),
            execution=execution,
        ),
        cache=cache,
    )
    elapsed = time.perf_counter() - started
    records = list(target) + list(baseline)
    if args.joint:
        rows = joint_rows(records, target_design="mokey", baseline_design="tensor-cores")
    else:
        rows = table1_rows(records, scheme=args.scheme)
    simulated = target.simulated_count + baseline.simulated_count
    view = "joint accuracy-vs-efficiency" if args.joint else "Table I fidelity"
    summary = (
        f"{len(rows)} {view} rows ({simulated} simulated, "
        f"{target.fidelity_evaluated} fidelity evaluated) in {elapsed:.2f}s"
        + ("" if store is None else f" [store={store.root}]")
    )
    _emit(format_records(rows, args.format), summary, args.output)
    return 0


def _report_filters(args: argparse.Namespace) -> List[Tuple[str, str, object]]:
    """The pushdown filter list: legacy axis flags plus parsed ``--where``.

    ``--scheme`` matches what the scheme *column* shows (the override if
    set, else the design name) and compiles to the ``effective_scheme``
    query field — a materialised, indexed column in the SQLite backend —
    so it pushes down like every other filter.
    """
    filters: List[Tuple[str, str, object]] = []
    for field, wanted in (
        ("model", args.model),
        ("task", args.task),
        ("design", args.design),
        ("batch_size", args.batch_size),
        ("buffer_bytes", None if args.buffer_kb is None else args.buffer_kb * KB),
    ):
        if wanted is not None:
            filters.append((field, "==", wanted))
    if args.scheme is not None:
        filters.append(("effective_scheme", "==", args.scheme))
    for text in args.where:
        filters.append(parse_filter(text))
    return filters


def _cmd_report(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    store = _open_cli_store(args)
    try:
        filters = _report_filters(args)
        if args.group_by is not None:
            rows = store.query(
                filters, group_by=args.group_by, order_by=args.order_by, limit=args.top
            )
            if not rows:
                print("no matching records in the store", file=sys.stderr)
                return 1
            summary = f"{len(rows)} groups from {store.root}"
            _emit(format_records(rows, args.format), summary, args.output)
            return 0
        entries = store.query(filters, order_by=args.order_by, limit=args.top)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    records = [
        ScenarioRecord(
            scenario=entry.scenario,
            result=entry.result,
            cached=True,
            fidelity=entry.fidelity,
            measured=entry.measured,
        )
        for entry in entries
    ]
    if not records:
        print("no matching records in the store", file=sys.stderr)
        return 1
    summary = f"{len(records)} records from {store.root}"
    _emit(format_records([r.to_row() for r in records], args.format), summary, args.output)
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    store = _open_cli_store(args)
    # One grouped pushdown query answers the whole summary — per
    # (model, design) counts plus the fidelity/measured tallies — without
    # deserializing any record payloads.
    rows = store.query(group_by=("model", "design"))
    total = sum(row["count"] for row in rows)
    print(f"store: {store.root} — {total} records")
    if store.skipped:
        print(f"  ({store.skipped} unreadable/old-schema records skipped)")
    with_fidelity = sum(row["with_fidelity"] for row in rows)
    with_measured = sum(row["with_measured"] for row in rows)
    if with_fidelity:
        print(f"  ({with_fidelity} records carry fidelity results)")
    if with_measured:
        print(f"  ({with_measured} records carry measured index-domain stats)")
    for row in rows:
        print(f"  {row['model']} on {row['design']}: {row['count']}")
    return 0


def _cmd_store_migrate(args: argparse.Namespace) -> int:
    source = open_store(args.source, backend=args.from_backend)
    if not source.path.exists():
        print(f"error: no {source.backend_name} store at {source.path}", file=sys.stderr)
        return 2
    try:
        dest = open_store(args.dest, backend=args.to_backend)
        stored = migrate_store(source, dest)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    summary = (
        f"migrated {stored} records: {source.root} ({source.backend_name}) "
        f"-> {dest.root} ({dest.backend_name})"
    )
    if source.skipped:
        summary += f" [{source.skipped} unreadable source records skipped]"
    print(summary)
    return 0


def _cmd_clean(args: argparse.Namespace) -> int:
    store = _open_cli_store(args)
    count = len(store)
    if not args.yes:
        print(
            f"would delete {count} records at {store.path}; re-run with --yes to proceed",
            file=sys.stderr,
        )
        return 1
    removed = store.clear()
    print(f"deleted {removed} records at {store.path}")
    return 0


def _cmd_store_stats(args: argparse.Namespace) -> int:
    store = open_store(args.path, backend=args.store_backend)
    if not store.path.exists():
        print(f"error: no {store.backend_name} store at {store.path}", file=sys.stderr)
        return 2
    # One grouped pushdown query yields every counter — no record payloads
    # are deserialized (with SQLite it runs server-side over indexed
    # columns).
    rows = store.query(group_by=("model", "design"))
    total = sum(row["count"] for row in rows)
    with_fidelity = sum(row["with_fidelity"] for row in rows)
    with_measured = sum(row["with_measured"] for row in rows)
    payload = {
        "store": str(store.root),
        "backend": store.backend_name,
        "schema_version": SCHEMA_VERSION,
        "records": total,
        "model_design_combos": len(rows),
        "with_fidelity": with_fidelity,
        "with_measured": with_measured,
        "fidelity_coverage": round(with_fidelity / total, 4) if total else 0.0,
        "measured_coverage": round(with_measured / total, 4) if total else 0.0,
        "skipped": store.skipped,
    }
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"store: {payload['store']}")
    print(f"  backend: {payload['backend']} (schema v{payload['schema_version']})")
    print(
        f"  records: {total} across {len(rows)} model x design combos"
    )
    print(
        f"  fidelity coverage: {with_fidelity}/{total} "
        f"({payload['fidelity_coverage']:.0%})"
    )
    print(
        f"  measured coverage: {with_measured}/{total} "
        f"({payload['measured_coverage']:.0%})"
    )
    print(f"  skipped (unreadable/old-schema): {store.skipped}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    store = args.store or _default_store()
    # The service defaults to SQLite: it is the backend proven under
    # concurrent shard writers (WAL mode, immediate-transaction retries).
    backend = args.store_backend or "sqlite"
    coordinator = Coordinator(store, store_backend=backend, default_workers=args.workers)
    try:
        server = make_server(args.host, args.port, coordinator, quiet=not args.verbose)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    host, port = server.server_address[:2]
    print(
        f"repro service listening on http://{host}:{port} "
        f"[store={store}, backend={backend}, workers={args.workers}] "
        f"— SIGTERM/Ctrl-C drains workers and exits",
        file=sys.stderr,
        flush=True,
    )
    run_daemon(server, coordinator)
    print("repro service drained and stopped", file=sys.stderr)
    return 0


def _load_spec_dict(path: str) -> Dict:
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        print(f"error: cannot read spec {path!r}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    except json.JSONDecodeError as exc:
        print(f"error: spec {path!r} is not valid JSON: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(payload, dict):
        print(f"error: spec {path!r} must hold a JSON object", file=sys.stderr)
        raise SystemExit(2)
    return payload


def _cmd_submit(args: argparse.Namespace) -> int:
    spec_dict = _load_spec_dict(args.spec)
    client = ServiceClient(args.url)
    try:
        job_id = client.submit(spec_dict, kind=args.kind, workers=args.workers)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(job_id)
    if not args.wait:
        return 0
    try:
        final = client.wait(job_id, timeout=args.timeout)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    progress = final["progress"]
    print(
        f"{job_id}: {final['state']} "
        f"({progress['completed']}/{progress['total']} scenarios, "
        f"{final['restarts']} worker restarts)"
        + (f" — {final['error']}" if final["error"] else ""),
        file=sys.stderr,
    )
    return 0 if final["state"] == "completed" else 1


def _cmd_service_status(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    try:
        if args.id is not None:
            print(json.dumps(client.status(args.id), indent=2, sort_keys=True))
            return 0
        jobs = client.jobs()
        if args.format == "json":
            print(json.dumps(jobs, indent=2, sort_keys=True))
            return 0
        if not jobs:
            print("no jobs submitted", file=sys.stderr)
            return 0
        for job in jobs:
            progress = job["progress"]
            print(
                f"{job['id']}: {job['state']} "
                f"{progress['completed']}/{progress['total']} "
                f"[{job['kind']} {job['name']!r}, workers={job['workers']}, "
                f"restarts={job['restarts']}]"
            )
        return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_results(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    try:
        lines = [json.dumps(record, sort_keys=True) for record in client.results(args.id)]
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _emit("\n".join(lines), f"{len(lines)} records from {client.url}", args.output)
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    try:
        status = client.cancel(args.id)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{args.id}: cancellation requested (state: {status['state']})")
    return 0


def _parse_trace_params(
    parser: argparse.ArgumentParser, texts: Sequence[str]
) -> Dict[str, float]:
    params: Dict[str, float] = {}
    for text in texts:
        key, sep, value = text.partition("=")
        if not sep or not key:
            parser.error(f"--trace-param wants KEY=VALUE, got {text!r}")
        try:
            params[key] = float(value)
        except ValueError:
            parser.error(f"--trace-param {key!r} wants a number, got {value!r}")
    return params


def _serving_spec_from_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> ServingSpec:
    """Build the serving spec: from ``--spec FILE`` or the flags.

    Execution flags (``--executor``/``--workers``) override the spec's
    policy either way, mirroring ``campaign run``.
    """
    if args.spec:
        try:
            spec = ServingSpec.load(args.spec)
        except OSError as exc:
            print(f"error: cannot read spec {args.spec!r}: {exc}", file=sys.stderr)
            raise SystemExit(2)
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            print(
                f"error: spec {args.spec!r} does not parse as a ServingSpec: {exc}",
                file=sys.stderr,
            )
            raise SystemExit(2)
    else:
        spec = ServingSpec(
            name="cli",
            model=args.model,
            task=args.task,
            sequence_length=args.sequence_length,
            schemes=tuple(args.schemes),
            designs=tuple(args.designs),
            buffer_bytes=args.buffer_kb * KB,
            trace=TraceSpec(
                kind=args.trace,
                rate_rps=args.rate,
                num_requests=args.requests,
                seed=args.seed,
                params=_parse_trace_params(parser, args.trace_param),
            ),
            policy=PolicySpec(
                kind=args.policy,
                max_batch=args.max_batch,
                timeout_ms=args.timeout_ms,
            ),
            num_accelerators=args.accelerators,
            slo_ms=args.slo_ms,
        )
    overrides = {}
    if args.executor is not None:
        overrides["executor"] = args.executor
    if args.workers is not None:
        overrides["max_workers"] = args.workers
    if overrides:
        spec = spec.with_execution(**overrides)
    return spec


def _cmd_serve_sim(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    spec = _resolve_spec_store(args, _serving_spec_from_args(parser, args))
    started = time.perf_counter()
    records = []
    last_progress = None
    try:
        events = iter_serving(spec)
        try:
            for record, progress in events:
                records.append(record)
                last_progress = progress
                if args.progress:
                    print(f"{progress} {record.base.label}", file=sys.stderr)
        finally:
            events.close()
    except (RegistryError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    store = spec.execution.store
    trace, policy = spec.trace, spec.policy
    summary = (
        f"{len(records)} combos over {trace.label} x {policy.label}: "
        f"{last_progress.requests if last_progress else 0} requests replayed, "
        f"{last_progress.simulated if last_progress else 0} batch shapes simulated, "
        f"{last_progress.from_store if last_progress else 0} from store "
        f"in {elapsed:.2f}s [executor={spec.execution.executor}"
        + ("]" if store is None else f", store={store}]")
    )
    _emit(format_records([r.to_row() for r in records], args.format), summary, args.output)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "campaign":
        if args.action == "run":
            return _cmd_run(parser, args)
        if args.action == "resume":
            return _cmd_resume(parser, args)
        if args.action == "report":
            return _cmd_report(parser, args)
        if args.action == "list":
            return _cmd_list(args)
        if args.action == "clean":
            return _cmd_clean(args)
    if args.command == "store":
        if args.action == "migrate":
            return _cmd_store_migrate(args)
        if args.action == "stats":
            return _cmd_store_stats(args)
    if args.command == "registry":
        return _cmd_registry_list(args)
    if args.command == "table1":
        return _cmd_table1(parser, args)
    if args.command == "serve-sim":
        return _cmd_serve_sim(parser, args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_service_status(args)
    if args.command == "results":
        return _cmd_results(args)
    if args.command == "cancel":
        return _cmd_cancel(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
