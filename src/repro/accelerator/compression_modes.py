"""Mokey as a memory-compression assist for the Tensor-Cores baseline.

Section IV-D evaluates two deployments in which the compute units remain
FP16 Tensor Cores and Mokey only compresses storage:

* **OC (off-chip only)** — values travel over the DRAM bus as 4-bit Mokey
  indexes and are expanded to FP16 by the decompression engine as they
  enter the chip; the on-chip buffer still holds FP16 values.
* **OC+ON (off-chip and on-chip)** — the on-chip buffer holds the 5-bit
  encoding too and values are expanded through lookup tables only as the
  compute units request them, which multiplies the effective buffer
  capacity.
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.accelerator.designs import AcceleratorDesign
from repro.accelerator.mokey_accel import MOKEY_OFFCHIP_BITS, MOKEY_ONCHIP_BITS
from repro.accelerator.tensor_cores import tensor_cores_design

__all__ = ["CompressionMode", "tensor_cores_with_mokey_compression"]


class CompressionMode(enum.Enum):
    """Memory-compression deployment modes of Section IV-D."""

    NONE = "none"
    OFF_CHIP = "oc"
    OFF_CHIP_AND_ON_CHIP = "oc+on"


def tensor_cores_with_mokey_compression(
    mode: CompressionMode, num_units: int = 2048
) -> AcceleratorDesign:
    """A Tensor-Cores design augmented with Mokey memory compression.

    Args:
        mode: Which levels of the memory hierarchy hold compressed values.
        num_units: Number of FP16 MAC units (same as the plain baseline).
    """
    base = tensor_cores_design(num_units)
    if mode is CompressionMode.NONE:
        return base
    if mode is CompressionMode.OFF_CHIP:
        return base.with_buffer_bits(
            name="tensor-cores+mokey-oc",
            weight_bits_offchip=MOKEY_OFFCHIP_BITS,
            activation_bits_offchip=MOKEY_OFFCHIP_BITS,
            weight_bits_onchip=16.0,
            activation_bits_onchip=16.0,
            decompression_lut=True,
        )
    if mode is CompressionMode.OFF_CHIP_AND_ON_CHIP:
        return base.with_buffer_bits(
            name="tensor-cores+mokey-oc+on",
            weight_bits_offchip=MOKEY_OFFCHIP_BITS,
            activation_bits_offchip=MOKEY_OFFCHIP_BITS,
            weight_bits_onchip=MOKEY_ONCHIP_BITS,
            activation_bits_onchip=MOKEY_ONCHIP_BITS,
            buffer_interface_bits=5,
            decompression_lut=True,
        )
    raise ValueError(f"unsupported compression mode: {mode}")
