"""Mokey as a memory-compression assist for the Tensor-Cores baseline.

Section IV-D evaluates two deployments in which the compute units remain
FP16 Tensor Cores and Mokey only compresses storage:

* **OC (off-chip only)** — values travel over the DRAM bus as 4-bit Mokey
  indexes and are expanded to FP16 by the decompression engine as they
  enter the chip; the on-chip buffer still holds FP16 values.
* **OC+ON (off-chip and on-chip)** — the on-chip buffer holds the 5-bit
  encoding too and values are expanded through lookup tables only as the
  compute units request them, which multiplies the effective buffer
  capacity.
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.accelerator.designs import AcceleratorDesign
from repro.accelerator.tensor_cores import tensor_cores_design

__all__ = [
    "CompressionMode",
    "COMPRESSION_MODE_DESIGNS",
    "tensor_cores_with_mokey_compression",
]


class CompressionMode(enum.Enum):
    """Memory-compression deployment modes of Section IV-D."""

    NONE = "none"
    OFF_CHIP = "oc"
    OFF_CHIP_AND_ON_CHIP = "oc+on"


#: Registered design name for each compression deployment (the names the
#: experiments design registry and the benchmarks share).
COMPRESSION_MODE_DESIGNS: Dict[CompressionMode, str] = {
    CompressionMode.NONE: "tensor-cores",
    CompressionMode.OFF_CHIP: "tensor-cores+mokey-oc",
    CompressionMode.OFF_CHIP_AND_ON_CHIP: "tensor-cores+mokey-oc+on",
}


def tensor_cores_with_mokey_compression(
    mode: CompressionMode, num_units: int = 2048
) -> AcceleratorDesign:
    """A Tensor-Cores design augmented with Mokey memory compression.

    Args:
        mode: Which levels of the memory hierarchy hold compressed values.
        num_units: Number of FP16 MAC units (same as the plain baseline).
    """
    base = tensor_cores_design(num_units)
    if mode is CompressionMode.NONE:
        return base
    # The storage widths come from the registered mokey-oc / mokey-oc+on
    # schemes (single source of truth for the Section IV-D deployments).
    if mode is CompressionMode.OFF_CHIP:
        return base.with_scheme("mokey-oc", name=COMPRESSION_MODE_DESIGNS[mode])
    if mode is CompressionMode.OFF_CHIP_AND_ON_CHIP:
        return base.with_scheme("mokey-oc+on", name=COMPRESSION_MODE_DESIGNS[mode])
    raise ValueError(f"unsupported compression mode: {mode}")
