"""Per-operation energy and area constants (65 nm, 1 GHz).

The paper derives its component numbers from post-layout synthesis
(Design Compiler + Innovus at 65 nm TSMC) and CACTI.  The constants below
are calibrated so that the component-level relations the paper reports
hold:

* a Mokey PE is ~39% smaller than an equivalent-throughput Tensor-Cores
  FP16 MAC unit (Section IV-C), giving the 16.1 vs 14.8 mm^2 compute areas
  of Table II at 2048 vs 3072 units;
* Mokey compute units consume ~2.7x less energy than FP16 Tensor Cores
  units (Section I);
* the Table III energy breakdown magnitudes (DRAM-dominated at small
  buffers, compute approaching half the total at large buffers).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OperationEnergies", "UnitAreas", "DEFAULT_ENERGIES", "DEFAULT_AREAS"]


@dataclass(frozen=True)
class OperationEnergies:
    """Energy per operation, in picojoules.

    Attributes:
        fp16_mac: FP16 multiply-accumulate (Tensor Cores / GOBO datapath).
        int16_mac: 16-bit fixed-point MAC (Mokey outlier and post-processing).
        gaussian_pair: One Mokey Gaussian pair: 3-bit index addition, sign
            XOR and the four counter-register-file updates.
        lut_lookup: One dictionary lookup (index -> 16-bit centroid).
        quantizer_value: Quantizing one output activation (comparator array
            plus encoder of Fig. 7).
        sram_read_bit: On-chip buffer read energy per bit.
        sram_write_bit: On-chip buffer write energy per bit.
    """

    fp16_mac: float = 6.5
    int16_mac: float = 2.6
    gaussian_pair: float = 2.4
    lut_lookup: float = 0.45
    quantizer_value: float = 1.8
    sram_read_bit: float = 0.035
    sram_write_bit: float = 0.045


@dataclass(frozen=True)
class UnitAreas:
    """Area per processing element, in mm^2 (65 nm).

    Calibrated from Table II: 2048 Tensor-Cores units in 16.1 mm^2,
    2560 GOBO units in 15.9 mm^2, 3072 Mokey units in 14.8 mm^2.
    """

    tensor_core_unit: float = 16.1 / 2048
    gobo_unit: float = 15.9 / 2560
    mokey_unit: float = 14.8 / 3072


DEFAULT_ENERGIES = OperationEnergies()
DEFAULT_AREAS = UnitAreas()
