"""Workload extraction: the GEMMs a transformer inference executes.

The accelerator evaluation operates on the full-size model configurations
(BERT-Base/Large, RoBERTa-Large, DeBERTa-XL) analytically: each encoder
layer contributes a fixed set of GEMMs whose shapes depend only on the
architecture and the sequence length.  The attention score and context
GEMMs are activation-by-activation products and therefore scale
quadratically with sequence length — the effect behind Fig. 1 and the
SQuAD results.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.transformer.config import TransformerConfig
from repro.transformer.model_zoo import MODEL_CONFIGS, PAPER_MODELS

__all__ = [
    "GemmShape",
    "Workload",
    "encoder_gemms",
    "model_workload",
    "paper_workloads",
    "TASK_SEQUENCE_LENGTHS",
]

# Sequence lengths used in the paper's evaluation (Section IV-D).
TASK_SEQUENCE_LENGTHS: Dict[str, int] = {"mnli": 128, "stsb": 128, "squad": 384}


@dataclass(frozen=True)
class GemmShape:
    """One GEMM: ``(m x k) @ (k x n)``, possibly repeated ``count`` times.

    Attributes:
        name: Human-readable label.
        m: Output rows (tokens).
        k: Reduction dimension.
        n: Output columns.
        count: How many identical GEMMs of this shape the layer performs
            (e.g. one per attention head).
        weight_static: Whether the second operand is a statically-known
            weight matrix (False for the attention score/context GEMMs whose
            both operands are activations).
    """

    name: str
    m: int
    k: int
    n: int
    count: int = 1
    weight_static: bool = True

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations of all ``count`` instances."""
        return self.m * self.k * self.n * self.count

    @property
    def weight_values(self) -> int:
        """Values of the second operand (0-reuse weight matrix) per layer."""
        return self.k * self.n * self.count

    @property
    def input_values(self) -> int:
        """Values of the first operand."""
        return self.m * self.k * self.count

    @property
    def output_values(self) -> int:
        """Values produced."""
        return self.m * self.n * self.count


@dataclass
class Workload:
    """A full-model inference workload.

    Attributes:
        name: Label, e.g. ``"bert-large/squad/seq384"``.
        config: The model architecture.
        sequence_length: Tokens per input.
        batch_size: Inputs processed per inference pass.
        layer_gemms: The GEMMs of one encoder layer (shapes already include
            the batch size in ``m``).
        num_layers: How many identical encoder layers the model has.
    """

    name: str
    config: TransformerConfig
    sequence_length: int
    batch_size: int
    layer_gemms: List[GemmShape]
    num_layers: int

    @property
    def total_macs(self) -> int:
        return self.num_layers * sum(g.macs for g in self.layer_gemms)

    @property
    def total_weight_values(self) -> int:
        """Distinct weight values across all layers (weights are per layer)."""
        return self.num_layers * sum(g.weight_values for g in self.layer_gemms if g.weight_static)

    @property
    def total_activation_values(self) -> int:
        """Activation values produced across all layers."""
        return self.num_layers * sum(g.output_values for g in self.layer_gemms)

    def activation_values_per_layer(self) -> int:
        return sum(g.output_values for g in self.layer_gemms)

    def with_batch_size(self, batch_size: int) -> "Workload":
        """Re-derive this workload at a different batch size.

        The GEMM shapes are rebuilt so the batch dimension flows through
        the token counts (and the per-head GEMM repetition counts) exactly
        as :func:`encoder_gemms` produces them.
        """
        base_name = re.sub(r"/bs\d+$", "", self.name)
        name = base_name if batch_size == 1 else f"{base_name}/bs{batch_size}"
        return Workload(
            name=name,
            config=self.config,
            sequence_length=self.sequence_length,
            batch_size=batch_size,
            layer_gemms=encoder_gemms(self.config, self.sequence_length, batch_size),
            num_layers=self.num_layers,
        )


def _workload_name(model_name: str, task: str, sequence_length: int, batch_size: int) -> str:
    """Canonical workload label; the batch suffix appears only when batched."""
    name = f"{model_name}/{task}/seq{sequence_length}"
    if batch_size != 1:
        name += f"/bs{batch_size}"
    return name


def encoder_gemms(
    config: TransformerConfig, sequence_length: int, batch_size: int = 1
) -> List[GemmShape]:
    """The GEMMs of one encoder layer at a given sequence length."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if sequence_length < 1:
        raise ValueError(f"sequence_length must be >= 1, got {sequence_length}")
    tokens = sequence_length * batch_size
    h = config.hidden_size
    heads = config.num_heads
    head_dim = config.head_dim
    inter = config.intermediate_size

    gemms = [
        GemmShape("attention.query", tokens, h, h),
        GemmShape("attention.key", tokens, h, h),
        GemmShape("attention.value", tokens, h, h),
        GemmShape(
            "attention.scores",
            sequence_length,
            head_dim,
            sequence_length,
            count=heads * batch_size,
            weight_static=False,
        ),
        GemmShape(
            "attention.context",
            sequence_length,
            sequence_length,
            head_dim,
            count=heads * batch_size,
            weight_static=False,
        ),
        GemmShape("attention.output", tokens, h, h),
        GemmShape("ffn.intermediate", tokens, h, inter),
        GemmShape("ffn.output", tokens, inter, h),
    ]
    if config.disentangled_attention:
        gemms.insert(3, GemmShape("attention.relative_query", tokens, h, h))
        gemms.insert(4, GemmShape("attention.relative_key", tokens, h, h))
    return gemms


def model_workload(
    model_name: str,
    task: str = "mnli",
    sequence_length: int = None,
    batch_size: int = 1,
) -> Workload:
    """Build the inference workload for one of the paper's model/task pairs.

    Args:
        model_name: One of the :data:`MODEL_CONFIGS` keys.
        task: Task name; sets the default sequence length (SQuAD uses 384).
        sequence_length: Override the task's default sequence length.
        batch_size: Inputs per inference pass (the paper evaluates batches).
    """
    if model_name not in MODEL_CONFIGS:
        raise KeyError(f"unknown model {model_name!r}")
    config = MODEL_CONFIGS[model_name]
    if sequence_length is None:
        sequence_length = TASK_SEQUENCE_LENGTHS.get(task, 128)
    gemms = encoder_gemms(config, sequence_length, batch_size)
    return Workload(
        name=_workload_name(model_name, task, sequence_length, batch_size),
        config=config,
        sequence_length=sequence_length,
        batch_size=batch_size,
        layer_gemms=gemms,
        num_layers=config.num_layers,
    )


def paper_workloads(batch_size: int = 1) -> List[Workload]:
    """The eight model/task workloads of the paper's evaluation (Table I)."""
    workloads = []
    for model_name, task, sequence_length, _head in PAPER_MODELS:
        workloads.append(
            model_workload(model_name, task, sequence_length, batch_size=batch_size)
        )
    return workloads
