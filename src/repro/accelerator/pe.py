"""Behavioural models of the Mokey processing elements (paper Fig. 6-7).

These models execute the hardware algorithm exactly as described — GPEs
count, the OPP handles outliers one at a time and drains the counters
during post-processing — and are validated in the tests against the
mathematical index-domain engine (:mod:`repro.core.index_compute`) and
against the plain dot product of the dequantized operands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.accelerator.crf import GpeCounterSet
from repro.core.tensor_dictionary import EncodedValues, TensorDictionary

__all__ = ["GaussianPe", "OutlierPostProcessor", "MokeyTile"]


@dataclass
class GaussianPe:
    """One Gaussian PE: counts exponent sums of Gaussian pairs.

    The PE also tracks the activation-only and weight-only exponent sums
    needed by SoA2/SoW2 (in hardware these are produced while the previous
    layer's outputs are quantized; keeping them here keeps the model
    self-contained).
    """

    num_half_entries: int = 8
    counters: GpeCounterSet = field(init=False)
    cycles: int = field(init=False, default=0)
    sum_theta_a_exp: float = field(init=False, default=0.0)
    sum_theta_w_exp: float = field(init=False, default=0.0)
    sum_theta_a: float = field(init=False, default=0.0)
    sum_theta_w: float = field(init=False, default=0.0)
    gaussian_pairs: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.counters = GpeCounterSet(self.num_half_entries)

    def process(self, act_index: int, act_sign: int, w_index: int, w_sign: int, base: float) -> None:
        """Process one Gaussian pair (one cycle)."""
        self.counters.process_pair(act_index, act_sign, w_index, w_sign)
        self.cycles += 1
        self.gaussian_pairs += 1
        self.sum_theta_a_exp += act_sign * base ** act_index
        self.sum_theta_w_exp += w_sign * base ** w_index
        self.sum_theta_a += act_sign
        self.sum_theta_w += w_sign


@dataclass
class OutlierPostProcessor:
    """The shared Outlier/Post-Processing (OPP) unit of one tile."""

    outlier_macs: int = 0
    post_processing_macs: int = 0
    accumulator: float = 0.0

    def process_outlier(self, act_value: float, weight_value: float) -> None:
        """Multiply-accumulate one outlier pair on its 16-bit centroids."""
        self.accumulator += act_value * weight_value
        self.outlier_macs += 1

    def post_process(
        self,
        pe: GaussianPe,
        act_dict: TensorDictionary,
        weight_dict: TensorDictionary,
    ) -> float:
        """Drain one GPE's counters into the final output activation value."""
        fit = act_dict.golden.fit
        a, b = fit.a, fit.b
        s_a, m_a = act_dict.std, act_dict.mean
        s_w, m_w = weight_dict.std, weight_dict.mean

        soi_counts = pe.counters.soi.drain().astype(np.float64)
        soa1_counts = pe.counters.soa1.drain().astype(np.float64)
        sow1_counts = pe.counters.sow1.drain().astype(np.float64)
        pom1_count = float(pe.counters.pom1.drain()[0])

        soi_bases = a ** np.arange(soi_counts.size)
        half_bases = a ** np.arange(soa1_counts.size)

        soi = s_a * s_w * float(soi_counts @ soi_bases)
        soa1 = s_a * s_w * b * float(soa1_counts @ half_bases)
        sow1 = s_w * s_a * b * float(sow1_counts @ half_bases)
        soa2 = s_a * m_w * pe.sum_theta_a_exp
        sow2 = s_w * m_a * pe.sum_theta_w_exp
        pom = (
            s_a * s_w * b * b * pom1_count
            + s_a * m_w * b * pe.sum_theta_a
            + s_w * m_a * b * pe.sum_theta_w
            + pe.gaussian_pairs * m_a * m_w
        )
        self.post_processing_macs += soi_counts.size + 2 * half_bases.size + 1
        return soi + soa1 + soa2 + sow1 + sow2 + pom


@dataclass
class MokeyTile:
    """A tile of GPEs sharing one OPP (8 GPEs per tile in the paper).

    The tile computes one output activation per GPE from encoded operand
    vectors, returning the values plus the cycle count including the
    serialisation penalty of outlier pairs.
    """

    num_gpes: int = 8
    num_half_entries: int = 8

    def compute_outputs(
        self,
        activation_rows: List[EncodedValues],
        weight_column: EncodedValues,
        act_dict: TensorDictionary,
        weight_dict: TensorDictionary,
    ) -> Tuple[np.ndarray, int]:
        """Compute one output activation per activation row against one weight column.

        Args:
            activation_rows: Up to ``num_gpes`` encoded activation vectors.
            weight_column: The encoded weight vector shared by all GPEs.
            act_dict: Activation dictionary.
            weight_dict: Weight dictionary.

        Returns:
            The output activation values and the tile cycle count.
        """
        if len(activation_rows) > self.num_gpes:
            raise ValueError("more activation rows than GPEs in the tile")
        base = act_dict.golden.fit.a
        opp = OutlierPostProcessor()
        pes = [GaussianPe(self.num_half_entries) for _ in activation_rows]
        accumulators = np.zeros(len(activation_rows))
        outlier_events = 0

        length = weight_column.size
        decoded_w = weight_dict.decode(weight_column, apply_fixed_point=False).ravel()
        for pe_index, activation in enumerate(activation_rows):
            if activation.size != length:
                raise ValueError("operand length mismatch")
            decoded_a = act_dict.decode(activation, apply_fixed_point=False).ravel()
            for position in range(length):
                is_outlier = bool(
                    activation.is_outlier.ravel()[position] or weight_column.is_outlier.ravel()[position]
                )
                if is_outlier:
                    opp.accumulator = 0.0
                    opp.process_outlier(decoded_a[position], decoded_w[position])
                    accumulators[pe_index] += opp.accumulator
                    outlier_events += 1
                else:
                    pes[pe_index].process(
                        int(activation.gaussian_index.ravel()[position]),
                        int(activation.sign.ravel()[position]),
                        int(weight_column.gaussian_index.ravel()[position]),
                        int(weight_column.sign.ravel()[position]),
                        base,
                    )

        for pe_index, pe in enumerate(pes):
            accumulators[pe_index] += opp.post_process(pe, act_dict, weight_dict)

        # Cycle model: one cycle per Gaussian pair per GPE (GPEs run in
        # lock-step), plus one serialised cycle per outlier event, plus the
        # serial post-processing drain.
        gaussian_cycles = max((pe.cycles for pe in pes), default=0)
        cycles = gaussian_cycles + outlier_events + opp.post_processing_macs
        return accumulators, cycles
