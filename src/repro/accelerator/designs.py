"""Accelerator design descriptors.

An :class:`AcceleratorDesign` captures everything the simulator needs to
know about a design: how many processing elements it has and what they
cost, which quantization scheme its datapath implements (a key into the
:mod:`repro.schemes` registry), and how many bits weights and activations
occupy off-chip and on-chip (which is where quantization and the
memory-compression modes enter the model).

The design is pure parameters; all per-scheme behaviour lives in the
scheme object the ``datapath`` name resolves to.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.accelerator.energy import DEFAULT_AREAS, DEFAULT_ENERGIES, OperationEnergies

__all__ = ["AcceleratorDesign", "DEFAULT_REGISTER_REUSE"]

# Register-file level operand reuse inside the PE array: each value fetched
# from the on-chip buffer is used this many times on average before being
# re-read (spatial reuse across the unit array).
DEFAULT_REGISTER_REUSE = 16.0


@dataclass(frozen=True)
class AcceleratorDesign:
    """Parameters of one accelerator design point.

    Attributes:
        name: Design label used in reports.
        datapath: Name of a registered :mod:`repro.schemes` scheme
            (e.g. ``"fp16"``, ``"gobo"``, ``"mokey"``, ``"mokey-oc"``).
        num_units: Number of processing elements (MAC units or GPEs).
        unit_area_mm2: Area per processing element.
        weight_bits_offchip: Bits per weight value in DRAM.
        activation_bits_offchip: Bits per activation value in DRAM.
        weight_bits_onchip: Bits per weight value in the on-chip buffer.
        activation_bits_onchip: Bits per activation value in the on-chip buffer.
        buffer_interface_bits: Value width at the buffer interface (drives
            buffer area).
        gpes_per_opp: Mokey only — GPEs sharing one outlier/post-processing
            unit.
        weight_outlier_fraction: Expected fraction of outlier-encoded weights.
        activation_outlier_fraction: Same for activations.
        decompression_lut: Whether values must pass through a lookup table
            when read into the datapath (GOBO weights, compression modes).
        energies: Per-operation energy constants.
        clock_hz: Operating frequency.
        register_reuse: Average uses per value fetched from the on-chip
            buffer before it is re-read (PE-array register/spatial reuse);
            divides the buffer read traffic in the SRAM energy model.
    """

    name: str
    datapath: str
    num_units: int
    unit_area_mm2: float
    weight_bits_offchip: float = 16.0
    activation_bits_offchip: float = 16.0
    weight_bits_onchip: float = 16.0
    activation_bits_onchip: float = 16.0
    buffer_interface_bits: int = 16
    gpes_per_opp: int = 8
    weight_outlier_fraction: float = 0.015
    activation_outlier_fraction: float = 0.045
    decompression_lut: bool = False
    energies: OperationEnergies = field(default_factory=lambda: DEFAULT_ENERGIES)
    clock_hz: float = 1e9
    register_reuse: float = DEFAULT_REGISTER_REUSE

    def __post_init__(self) -> None:
        self.scheme()  # raises ValueError for unknown datapath names
        if self.num_units <= 0:
            raise ValueError("num_units must be positive")
        if self.register_reuse <= 0:
            raise ValueError("register_reuse must be positive")

    def scheme(self):
        """The registered :class:`~repro.schemes.base.QuantizationScheme`."""
        # Imported here: repro.schemes modules import this module for type
        # hints/constants, so a top-level import would be circular.
        from repro.schemes import get_scheme

        return get_scheme(self.datapath)

    def summary(self) -> str:
        """One-line human description (used by ``repro registry list designs``)."""
        return (
            f"{self.name}: {self.num_units} units, {self.datapath!r} datapath, "
            f"w{self.weight_bits_offchip:g}b/a{self.activation_bits_offchip:g}b off-chip"
        )

    @property
    def compute_area_mm2(self) -> float:
        """Total processing-element array area."""
        return self.num_units * self.unit_area_mm2

    @property
    def peak_macs_per_cycle(self) -> float:
        """Peak multiply-accumulate (or pair-processing) throughput."""
        return float(self.num_units)

    def with_buffer_bits(
        self,
        weight_bits_offchip: Optional[float] = None,
        activation_bits_offchip: Optional[float] = None,
        weight_bits_onchip: Optional[float] = None,
        activation_bits_onchip: Optional[float] = None,
        name: Optional[str] = None,
        decompression_lut: Optional[bool] = None,
        buffer_interface_bits: Optional[int] = None,
        datapath: Optional[str] = None,
    ) -> "AcceleratorDesign":
        """Return a variant with different storage precisions (compression modes)."""
        updates = {}
        if weight_bits_offchip is not None:
            updates["weight_bits_offchip"] = weight_bits_offchip
        if activation_bits_offchip is not None:
            updates["activation_bits_offchip"] = activation_bits_offchip
        if weight_bits_onchip is not None:
            updates["weight_bits_onchip"] = weight_bits_onchip
        if activation_bits_onchip is not None:
            updates["activation_bits_onchip"] = activation_bits_onchip
        if name is not None:
            updates["name"] = name
        if decompression_lut is not None:
            updates["decompression_lut"] = decompression_lut
        if buffer_interface_bits is not None:
            updates["buffer_interface_bits"] = buffer_interface_bits
        if datapath is not None:
            updates["datapath"] = datapath
        return replace(self, **updates)

    def with_scheme(self, scheme_name: str, name: Optional[str] = None) -> "AcceleratorDesign":
        """Return a variant running ``scheme_name`` with that scheme's storage widths.

        The PE array (unit count, areas, energies, clock) is kept; the
        storage-related fields and the scheme-coupled outlier fractions are
        reset to the scheme's defaults.  This is what the campaign engine
        uses to sweep schemes over a fixed design.
        """
        from repro.schemes import get_scheme

        storage = get_scheme(scheme_name).storage()
        return replace(
            self,
            name=name or f"{self.name}[{scheme_name}]",
            datapath=scheme_name,
            weight_bits_offchip=storage.weight_bits_offchip,
            activation_bits_offchip=storage.activation_bits_offchip,
            weight_bits_onchip=storage.weight_bits_onchip,
            activation_bits_onchip=storage.activation_bits_onchip,
            buffer_interface_bits=storage.buffer_interface_bits,
            decompression_lut=storage.decompression_lut,
            weight_outlier_fraction=storage.weight_outlier_fraction,
            activation_outlier_fraction=storage.activation_outlier_fraction,
        )
