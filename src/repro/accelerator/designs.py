"""Accelerator design descriptors.

An :class:`AcceleratorDesign` captures everything the simulator needs to
know about a design: how many processing elements it has and what they
cost, which datapath family they implement, and how many bits weights and
activations occupy off-chip and on-chip (which is where quantization and
the memory-compression modes enter the model).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.accelerator.energy import DEFAULT_AREAS, DEFAULT_ENERGIES, OperationEnergies

__all__ = ["AcceleratorDesign"]


@dataclass(frozen=True)
class AcceleratorDesign:
    """Parameters of one accelerator design point.

    Attributes:
        name: Design label used in reports.
        datapath: One of ``"fp16"`` (Tensor Cores), ``"gobo"`` or ``"mokey"``.
        num_units: Number of processing elements (MAC units or GPEs).
        unit_area_mm2: Area per processing element.
        weight_bits_offchip: Bits per weight value in DRAM.
        activation_bits_offchip: Bits per activation value in DRAM.
        weight_bits_onchip: Bits per weight value in the on-chip buffer.
        activation_bits_onchip: Bits per activation value in the on-chip buffer.
        buffer_interface_bits: Value width at the buffer interface (drives
            buffer area).
        gpes_per_opp: Mokey only — GPEs sharing one outlier/post-processing
            unit.
        weight_outlier_fraction: Expected fraction of outlier-encoded weights.
        activation_outlier_fraction: Same for activations.
        decompression_lut: Whether values must pass through a lookup table
            when read into the datapath (GOBO weights, compression modes).
        energies: Per-operation energy constants.
        clock_hz: Operating frequency.
    """

    name: str
    datapath: str
    num_units: int
    unit_area_mm2: float
    weight_bits_offchip: float = 16.0
    activation_bits_offchip: float = 16.0
    weight_bits_onchip: float = 16.0
    activation_bits_onchip: float = 16.0
    buffer_interface_bits: int = 16
    gpes_per_opp: int = 8
    weight_outlier_fraction: float = 0.015
    activation_outlier_fraction: float = 0.045
    decompression_lut: bool = False
    energies: OperationEnergies = field(default_factory=lambda: DEFAULT_ENERGIES)
    clock_hz: float = 1e9

    def __post_init__(self) -> None:
        if self.datapath not in ("fp16", "gobo", "mokey"):
            raise ValueError(f"unknown datapath {self.datapath!r}")
        if self.num_units <= 0:
            raise ValueError("num_units must be positive")

    @property
    def compute_area_mm2(self) -> float:
        """Total processing-element array area."""
        return self.num_units * self.unit_area_mm2

    @property
    def peak_macs_per_cycle(self) -> float:
        """Peak multiply-accumulate (or pair-processing) throughput."""
        return float(self.num_units)

    def with_buffer_bits(
        self,
        weight_bits_offchip: Optional[float] = None,
        activation_bits_offchip: Optional[float] = None,
        weight_bits_onchip: Optional[float] = None,
        activation_bits_onchip: Optional[float] = None,
        name: Optional[str] = None,
        decompression_lut: Optional[bool] = None,
        buffer_interface_bits: Optional[int] = None,
    ) -> "AcceleratorDesign":
        """Return a variant with different storage precisions (compression modes)."""
        updates = {}
        if weight_bits_offchip is not None:
            updates["weight_bits_offchip"] = weight_bits_offchip
        if activation_bits_offchip is not None:
            updates["activation_bits_offchip"] = activation_bits_offchip
        if weight_bits_onchip is not None:
            updates["weight_bits_onchip"] = weight_bits_onchip
        if activation_bits_onchip is not None:
            updates["activation_bits_onchip"] = activation_bits_onchip
        if name is not None:
            updates["name"] = name
        if decompression_lut is not None:
            updates["decompression_lut"] = decompression_lut
        if buffer_interface_bits is not None:
            updates["buffer_interface_bits"] = buffer_interface_bits
        return replace(self, **updates)
