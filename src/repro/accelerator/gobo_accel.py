"""The GOBO accelerator (paper Section IV-C "Comparison with GOBO").

GOBO stores weights as 3-bit dictionary indexes (plus rare FP32 outliers)
but keeps activations in FP16 and computes with FP16 units: each weight
index passes through a small lookup table before the MAC.  Its advantage
over the Tensor-Cores baseline is therefore weight traffic/capacity only.
"""

from __future__ import annotations

from repro.accelerator.designs import AcceleratorDesign
from repro.accelerator.energy import DEFAULT_AREAS

__all__ = ["gobo_design", "GOBO_WEIGHT_BITS"]

# Effective bits per stored weight value: 3-bit indexes for ~99.9% of the
# values plus FP32 outliers and the per-tensor dictionary amortise to ~3.3b.
GOBO_WEIGHT_BITS = 3.3
_GOBO_WEIGHT_BITS = GOBO_WEIGHT_BITS  # backwards-compatible alias


def gobo_design(num_units: int = 2560) -> AcceleratorDesign:
    """The GOBO accelerator configuration used for Figures 12-13."""
    return AcceleratorDesign(
        name="gobo",
        datapath="gobo",
        num_units=num_units,
        unit_area_mm2=DEFAULT_AREAS.gobo_unit,
        weight_bits_offchip=_GOBO_WEIGHT_BITS,
        activation_bits_offchip=16.0,
        weight_bits_onchip=_GOBO_WEIGHT_BITS,
        activation_bits_onchip=16.0,
        buffer_interface_bits=16,
        weight_outlier_fraction=0.001,
        activation_outlier_fraction=0.0,
        decompression_lut=True,
    )
