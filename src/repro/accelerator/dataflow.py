"""Dataflow and off-chip traffic model.

The simulator executes a model layer by layer.  For every GEMM it decides
how much off-chip traffic the chosen tiling incurs, given the on-chip
buffer capacity and the per-value storage widths of the design:

* weight matrices always stream from DRAM at least once per inference pass
  (model weights are far larger than any on-chip buffer);
* if the GEMM's input activations do not fit in the activation share of
  the buffer *and* the weights do not fit in the weight share either, the
  weights must be re-streamed once per activation tile (the classic tiled
  GEMM re-fetch penalty) — this is the effect that quantization attacks by
  shrinking both streams and boosting effective buffer capacity;
* activation tensors travel to/from DRAM only when the layer's activation
  working set exceeds the activation share of the buffer.

The dataflow is chosen per GEMM to minimise traffic (the paper notes "the
dataflow for all designs is optimized to minimize the number of off-chip
transactions").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.accelerator.designs import AcceleratorDesign
from repro.accelerator.workloads import GemmShape, Workload

__all__ = ["GemmTraffic", "LayerTraffic", "plan_layer", "activation_working_set_bits"]


@dataclass
class GemmTraffic:
    """Off-chip traffic of one GEMM under a particular buffer configuration.

    Attributes:
        gemm: The GEMM this traffic belongs to.
        weight_bytes: Weight bytes streamed from DRAM (including re-fetches).
        activation_read_bytes: Activation bytes read from DRAM.
        activation_write_bytes: Activation bytes written to DRAM.
        weight_refetches: How many times the weight matrix is streamed.
    """

    gemm: GemmShape
    weight_bytes: float
    activation_read_bytes: float
    activation_write_bytes: float
    weight_refetches: int

    @property
    def total_bytes(self) -> float:
        return self.weight_bytes + self.activation_read_bytes + self.activation_write_bytes


@dataclass
class LayerTraffic:
    """Traffic of one encoder layer (all its GEMMs)."""

    gemms: List[GemmTraffic]
    activations_resident: bool

    @property
    def total_bytes(self) -> float:
        return sum(g.total_bytes for g in self.gemms)

    @property
    def weight_bytes(self) -> float:
        return sum(g.weight_bytes for g in self.gemms)

    @property
    def activation_bytes(self) -> float:
        return sum(g.activation_read_bytes + g.activation_write_bytes for g in self.gemms)


def activation_working_set_bits(workload: Workload, bits_per_value: float) -> float:
    """On-chip bits needed to keep one layer's activations resident.

    The working set is the largest simultaneous producer/consumer pair of
    tensors within the layer (input + output of the widest GEMM), which is
    what a layer-serial dataflow has to hold to avoid spilling.
    """
    largest = 0.0
    for gemm in workload.layer_gemms:
        need = (gemm.input_values + gemm.output_values) * bits_per_value
        largest = max(largest, need)
    return largest


def plan_layer(
    workload: Workload,
    design: AcceleratorDesign,
    buffer_bytes: int,
    activation_buffer_fraction: float = 0.5,
) -> LayerTraffic:
    """Compute the off-chip traffic of one encoder layer.

    Args:
        workload: The model workload (provides the layer's GEMM list).
        design: Accelerator design (provides per-value bit widths).
        buffer_bytes: Total on-chip buffer capacity.
        activation_buffer_fraction: Fraction of the buffer reserved for
            activations; the rest holds weight tiles.
    """
    buffer_bits = buffer_bytes * 8
    act_share_bits = buffer_bits * activation_buffer_fraction
    weight_share_bits = buffer_bits - act_share_bits

    working_set_bits = activation_working_set_bits(workload, design.activation_bits_onchip)
    activations_resident = working_set_bits <= act_share_bits

    gemms: List[GemmTraffic] = []
    for gemm in workload.layer_gemms:
        weight_bits_on = gemm.weight_values * design.weight_bits_onchip
        # The activation share must hold the GEMM's input tile and its output
        # tile simultaneously (producer/consumer double buffering).
        input_bits_on = (gemm.input_values + gemm.output_values) * design.activation_bits_onchip

        if gemm.weight_static:
            weight_fits = weight_bits_on <= weight_share_bits
            input_fits = input_bits_on <= act_share_bits
            if weight_fits or input_fits:
                refetches = 1
            else:
                # Neither operand fits: tile the activations and re-stream the
                # weights once per activation tile (or vice versa, whichever
                # is cheaper).
                activation_tiles = math.ceil(input_bits_on / act_share_bits)
                weight_tiles = math.ceil(weight_bits_on / weight_share_bits)
                weight_refetch_traffic = activation_tiles * gemm.weight_values * design.weight_bits_offchip
                act_refetch_traffic = weight_tiles * gemm.input_values * design.activation_bits_offchip
                if weight_refetch_traffic <= act_refetch_traffic:
                    refetches = activation_tiles
                else:
                    refetches = 1  # weights stream once, activations re-read instead
            weight_bytes = gemm.weight_values * design.weight_bits_offchip / 8 * refetches
        else:
            refetches = 1
            weight_bytes = 0.0

        if activations_resident:
            activation_read = 0.0
            activation_write = 0.0
        else:
            read_factor = 1.0
            if gemm.weight_static and refetches == 1:
                # If weights were kept resident while activations stream, the
                # activations may need to be re-read per weight tile.
                weight_tiles = math.ceil(
                    max(1.0, gemm.weight_values * design.weight_bits_onchip / max(weight_share_bits, 1.0))
                )
                input_fits = input_bits_on <= act_share_bits
                if not input_fits and weight_tiles > 1:
                    read_factor = weight_tiles
            activation_read = gemm.input_values * design.activation_bits_offchip / 8 * read_factor
            if not gemm.weight_static:
                # Both operands are activations (attention score/context GEMMs).
                activation_read += gemm.weight_values * design.activation_bits_offchip / 8
            activation_write = gemm.output_values * design.activation_bits_offchip / 8

        gemms.append(
            GemmTraffic(
                gemm=gemm,
                weight_bytes=weight_bytes,
                activation_read_bytes=activation_read,
                activation_write_bytes=activation_write,
                weight_refetches=refetches,
            )
        )

    return LayerTraffic(gemms=gemms, activations_resident=activations_resident)
