"""Accelerator models: Tensor-Cores baseline, GOBO and Mokey.

The paper evaluates a spatial FP16 Tensor-Cores-style accelerator, the
GOBO accelerator and the Mokey accelerator with a cycle-accurate simulator
plus DRAMsim3/CACTI/post-layout numbers.  This subpackage provides the
equivalent analytical/event-level models: per-design compute and datapath
parameters (:mod:`designs`), a layer-by-layer dataflow and traffic model
(:mod:`dataflow`), and an end-to-end simulator (:mod:`simulator`) that
produces cycle counts, energy breakdowns and area numbers for any
model/sequence-length/buffer-size combination, including Mokey's
memory-compression-only deployment modes (:mod:`compression_modes`).
"""

from repro.accelerator.metrics import AreaBreakdown, EnergyBreakdown, SimulationResult
from repro.accelerator.energy import OperationEnergies, DEFAULT_ENERGIES
from repro.accelerator.workloads import GemmShape, Workload, model_workload, encoder_gemms
from repro.accelerator.tensor_cores import tensor_cores_design
from repro.accelerator.gobo_accel import gobo_design
from repro.accelerator.mokey_accel import mokey_design
from repro.accelerator.designs import AcceleratorDesign, DEFAULT_REGISTER_REUSE
from repro.accelerator.simulator import (
    AcceleratorSimulator,
    DatapathModel,
    MemoryModel,
    MemoryPhase,
    OverlapModel,
    OverlapParameters,
)
from repro.accelerator.compression_modes import (
    tensor_cores_with_mokey_compression,
    CompressionMode,
)

__all__ = [
    "AreaBreakdown",
    "EnergyBreakdown",
    "SimulationResult",
    "OperationEnergies",
    "DEFAULT_ENERGIES",
    "GemmShape",
    "Workload",
    "model_workload",
    "encoder_gemms",
    "AcceleratorDesign",
    "DEFAULT_REGISTER_REUSE",
    "tensor_cores_design",
    "gobo_design",
    "mokey_design",
    "AcceleratorSimulator",
    "DatapathModel",
    "MemoryModel",
    "MemoryPhase",
    "OverlapModel",
    "OverlapParameters",
    "tensor_cores_with_mokey_compression",
    "CompressionMode",
]
