"""Result dataclasses shared by the accelerator simulator and benchmarks.

All three dataclasses round-trip through ``to_dict``/``from_dict`` so the
on-disk artifact store (:mod:`repro.experiments.store`) can persist them as
JSON.  ``from_dict`` tolerates unknown fields: records written by a newer
schema with extra keys still load on older code.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping

__all__ = ["EnergyBreakdown", "AreaBreakdown", "SimulationResult"]


def _known_fields(cls, data: Mapping[str, Any]) -> Dict[str, Any]:
    """The subset of ``data`` naming actual fields of dataclass ``cls``."""
    names = {f.name for f in fields(cls)}
    return {key: value for key, value in data.items() if key in names}


@dataclass
class EnergyBreakdown:
    """Energy in joules, split by component (Table III rows)."""

    dram: float = 0.0
    sram: float = 0.0
    compute: float = 0.0

    @property
    def total(self) -> float:
        return self.dram + self.sram + self.compute

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            dram=self.dram * factor, sram=self.sram * factor, compute=self.compute * factor
        )

    def add(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        self.dram += other.dram
        self.sram += other.sram
        self.compute += other.compute
        return self

    def to_dict(self) -> Dict[str, float]:
        return {"dram": float(self.dram), "sram": float(self.sram), "compute": float(self.compute)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EnergyBreakdown":
        return cls(**_known_fields(cls, data))


@dataclass
class AreaBreakdown:
    """Area in mm^2, split by component (Table III rows)."""

    compute: float = 0.0
    buffer: float = 0.0

    @property
    def total(self) -> float:
        return self.compute + self.buffer

    def to_dict(self) -> Dict[str, float]:
        return {"compute": float(self.compute), "buffer": float(self.buffer)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AreaBreakdown":
        return cls(**_known_fields(cls, data))


@dataclass
class SimulationResult:
    """End-to-end simulation outcome for one accelerator configuration.

    Attributes:
        design_name: Accelerator design label.
        workload_name: Model/task/sequence-length label.
        buffer_bytes: On-chip buffer capacity used.
        compute_cycles: Cycles the compute array is busy.
        memory_cycles: Cycles spent waiting on off-chip transfers.
        total_cycles: End-to-end cycles after compute/memory overlap.
        traffic_bytes: Total off-chip traffic.
        energy: Energy breakdown.
        area: Area breakdown.
        detail: Free-form per-simulation extras.
    """

    design_name: str
    workload_name: str
    buffer_bytes: int
    compute_cycles: float
    memory_cycles: float
    total_cycles: float
    traffic_bytes: float
    energy: EnergyBreakdown
    area: AreaBreakdown
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def overlap_fraction(self) -> float:
        """Fraction of the shorter phase hidden behind the longer one."""
        shorter = min(self.compute_cycles, self.memory_cycles)
        if shorter <= 0:
            return 1.0
        hidden = self.compute_cycles + self.memory_cycles - self.total_cycles
        return max(0.0, min(1.0, hidden / shorter))

    def speedup_over(self, other: "SimulationResult") -> float:
        """How many times faster this result is than ``other``."""
        if self.total_cycles <= 0:
            return float("inf")
        return other.total_cycles / self.total_cycles

    def energy_efficiency_over(self, other: "SimulationResult") -> float:
        """How many times less energy this result uses than ``other``."""
        if self.energy.total <= 0:
            return float("inf")
        return other.energy.total / self.energy.total

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation; inverse of :meth:`from_dict`."""
        return {
            "design_name": self.design_name,
            "workload_name": self.workload_name,
            "buffer_bytes": int(self.buffer_bytes),
            "compute_cycles": float(self.compute_cycles),
            "memory_cycles": float(self.memory_cycles),
            "total_cycles": float(self.total_cycles),
            "traffic_bytes": float(self.traffic_bytes),
            "energy": self.energy.to_dict(),
            "area": self.area.to_dict(),
            "detail": {key: float(value) for key, value in self.detail.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output, ignoring unknown keys."""
        known = _known_fields(cls, data)
        known["energy"] = EnergyBreakdown.from_dict(known.get("energy") or {})
        known["area"] = AreaBreakdown.from_dict(known.get("area") or {})
        known["detail"] = dict(known.get("detail") or {})
        return cls(**known)
