"""Result dataclasses shared by the accelerator simulator and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["EnergyBreakdown", "AreaBreakdown", "SimulationResult"]


@dataclass
class EnergyBreakdown:
    """Energy in joules, split by component (Table III rows)."""

    dram: float = 0.0
    sram: float = 0.0
    compute: float = 0.0

    @property
    def total(self) -> float:
        return self.dram + self.sram + self.compute

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            dram=self.dram * factor, sram=self.sram * factor, compute=self.compute * factor
        )

    def add(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        self.dram += other.dram
        self.sram += other.sram
        self.compute += other.compute
        return self


@dataclass
class AreaBreakdown:
    """Area in mm^2, split by component (Table III rows)."""

    compute: float = 0.0
    buffer: float = 0.0

    @property
    def total(self) -> float:
        return self.compute + self.buffer


@dataclass
class SimulationResult:
    """End-to-end simulation outcome for one accelerator configuration.

    Attributes:
        design_name: Accelerator design label.
        workload_name: Model/task/sequence-length label.
        buffer_bytes: On-chip buffer capacity used.
        compute_cycles: Cycles the compute array is busy.
        memory_cycles: Cycles spent waiting on off-chip transfers.
        total_cycles: End-to-end cycles after compute/memory overlap.
        traffic_bytes: Total off-chip traffic.
        energy: Energy breakdown.
        area: Area breakdown.
        detail: Free-form per-simulation extras.
    """

    design_name: str
    workload_name: str
    buffer_bytes: int
    compute_cycles: float
    memory_cycles: float
    total_cycles: float
    traffic_bytes: float
    energy: EnergyBreakdown
    area: AreaBreakdown
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def overlap_fraction(self) -> float:
        """Fraction of the shorter phase hidden behind the longer one."""
        shorter = min(self.compute_cycles, self.memory_cycles)
        if shorter <= 0:
            return 1.0
        hidden = self.compute_cycles + self.memory_cycles - self.total_cycles
        return max(0.0, min(1.0, hidden / shorter))

    def speedup_over(self, other: "SimulationResult") -> float:
        """How many times faster this result is than ``other``."""
        if self.total_cycles <= 0:
            return float("inf")
        return other.total_cycles / self.total_cycles

    def energy_efficiency_over(self, other: "SimulationResult") -> float:
        """How many times less energy this result uses than ``other``."""
        if self.energy.total <= 0:
            return float("inf")
        return other.energy.total / self.energy.total
