"""End-to-end accelerator simulation, decomposed into composable stages.

For a given workload (model/task/sequence length/batch), accelerator
design and on-chip buffer capacity, the simulator produces the quantities
the paper's evaluation section reports: compute cycles, memory transfer
cycles, total cycles after compute/memory overlap, off-chip traffic, an
energy breakdown (DRAM / on-chip SRAM / compute) and an area breakdown
(compute array / buffers).  All encoder layers of a model are identical,
so the simulator models one layer in detail and scales by the layer count.

The simulation is staged:

* :class:`DatapathModel` — dispatches to the design's registered
  :class:`~repro.schemes.base.QuantizationScheme` for compute cycles and
  energy (there is no per-method branching here; adding a method is a
  scheme registration);
* :class:`MemoryModel` — off-chip traffic (via the dataflow planner),
  DRAM cycles/energy and on-chip buffer access energy;
* :class:`OverlapModel` — how much of the shorter phase (compute or
  memory) hides behind the longer one.

Each stage can be replaced independently when constructing an
:class:`AcceleratorSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.accelerator.dataflow import LayerTraffic, activation_working_set_bits, plan_layer
from repro.accelerator.designs import AcceleratorDesign
from repro.accelerator.metrics import AreaBreakdown, EnergyBreakdown, SimulationResult
from repro.accelerator.workloads import Workload
from repro.memory.dram import DramModel
from repro.memory.sram import SramBuffer
from repro.schemes.base import ComputePhase

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.index_compute import IndexComputeStats

__all__ = [
    "AcceleratorSimulator",
    "DatapathModel",
    "MemoryModel",
    "MemoryPhase",
    "OverlapModel",
    "OverlapParameters",
]


class DatapathModel:
    """Compute stage: delegates one layer's cycles/energy to the scheme."""

    def layer_compute(self, workload: Workload, design: AcceleratorDesign) -> ComputePhase:
        return design.scheme().layer_compute(workload, design)


@dataclass
class MemoryPhase:
    """Outcome of the memory stage for one encoder layer.

    Attributes:
        traffic: Per-GEMM off-chip traffic plan.
        cycles: DRAM transfer cycles for the layer.
        dram_energy_joules: DRAM access energy for the layer.
        sram_energy_joules: On-chip buffer access energy for the layer.
    """

    traffic: LayerTraffic
    cycles: float
    dram_energy_joules: float
    sram_energy_joules: float

    @property
    def traffic_bytes(self) -> float:
        return self.traffic.total_bytes


class MemoryModel:
    """Memory stage: off-chip traffic, DRAM cycles/energy, SRAM energy.

    Args:
        dram: Main-memory model (DDR4-3200 dual channel by default).
    """

    def __init__(self, dram: Optional[DramModel] = None) -> None:
        self.dram = dram or DramModel()

    def layer_memory(
        self,
        workload: Workload,
        design: AcceleratorDesign,
        buffer: SramBuffer,
        activation_buffer_fraction: float = 0.5,
    ) -> MemoryPhase:
        traffic = plan_layer(
            workload, design, buffer.capacity_bytes, activation_buffer_fraction
        )
        return MemoryPhase(
            traffic=traffic,
            cycles=self.dram.transfer_cycles(traffic.total_bytes, design.clock_hz),
            dram_energy_joules=self.dram.transfer_energy_joules(traffic.total_bytes),
            sram_energy_joules=self._layer_sram_energy(workload, design, buffer),
        )

    @staticmethod
    def _layer_sram_energy(
        workload: Workload, design: AcceleratorDesign, buffer: SramBuffer
    ) -> float:
        """On-chip buffer access energy of one encoder layer (joules)."""
        read_bits = 0.0
        write_bits = 0.0
        for gemm in workload.layer_gemms:
            operand_bits = (
                gemm.input_values * design.activation_bits_onchip
                + gemm.weight_values
                * (design.weight_bits_onchip if gemm.weight_static else design.activation_bits_onchip)
            )
            # Every MAC needs two operands; the register/array-level reuse
            # factor limits how often the buffer is actually read.
            read_bits += (
                2.0 * gemm.macs
                * (design.activation_bits_onchip + design.weight_bits_onchip) / 2.0
                / design.register_reuse
            )
            read_bits += operand_bits  # initial fill of the buffer
            write_bits += gemm.output_values * design.activation_bits_onchip
        return buffer.read_energy_joules(read_bits) + buffer.write_energy_joules(write_bits)


@dataclass(frozen=True)
class OverlapParameters:
    """Coefficients of the compute/memory overlap heuristic.

    The overlap efficiency rises linearly with the fraction of the layer's
    activation working set that fits in the activation share of the buffer
    (``base_efficiency + residency_slope * ratio``), clamped to
    ``[min_efficiency, max_efficiency]``.  A fully resident working set
    approaches perfect double buffering (98%); a badly spilling one still
    overlaps bursts (25%).

    Attributes:
        max_efficiency: Ceiling (and the value when the working set is
            trivially resident).
        min_efficiency: Floor when the working set dwarfs the buffer.
        base_efficiency: Intercept of the linear region.
        residency_slope: Slope of the linear region in the residency ratio.
    """

    max_efficiency: float = 0.98
    min_efficiency: float = 0.25
    base_efficiency: float = 0.3
    residency_slope: float = 0.7


class OverlapModel:
    """Overlap stage: how much of the shorter phase can be hidden.

    Args:
        parameters: Heuristic coefficients; paper-calibrated defaults.
    """

    def __init__(self, parameters: Optional[OverlapParameters] = None) -> None:
        self.parameters = parameters or OverlapParameters()

    def efficiency(
        self,
        workload: Workload,
        design: AcceleratorDesign,
        buffer_bytes: int,
        activation_buffer_fraction: float = 0.5,
    ) -> float:
        params = self.parameters
        act_share_bits = buffer_bytes * 8 * activation_buffer_fraction
        working_set = activation_working_set_bits(workload, design.activation_bits_onchip)
        if working_set <= 0:
            return params.max_efficiency
        ratio = act_share_bits / working_set
        return float(
            min(
                params.max_efficiency,
                max(
                    params.min_efficiency,
                    params.base_efficiency + params.residency_slope * ratio,
                ),
            )
        )

    @staticmethod
    def combine(compute_cycles: float, memory_cycles: float, efficiency: float) -> float:
        """Total cycles after hiding ``efficiency`` of the shorter phase."""
        return max(compute_cycles, memory_cycles) + (1.0 - efficiency) * min(
            compute_cycles, memory_cycles
        )


class AcceleratorSimulator:
    """Simulates a workload on an accelerator design.

    Args:
        design: The accelerator design point.
        dram: Main-memory model (DDR4-3200 dual channel by default);
            shorthand for passing ``memory=MemoryModel(dram)``.
        datapath: Compute stage; scheme-dispatching default.
        memory: Memory stage.
        overlap: Overlap stage.
    """

    def __init__(
        self,
        design: AcceleratorDesign,
        dram: Optional[DramModel] = None,
        datapath: Optional[DatapathModel] = None,
        memory: Optional[MemoryModel] = None,
        overlap: Optional[OverlapModel] = None,
    ) -> None:
        self.design = design
        self.datapath = datapath or DatapathModel()
        self.memory = memory or MemoryModel(dram)
        self.overlap = overlap or OverlapModel()

    @property
    def dram(self) -> DramModel:
        """The memory stage's DRAM model (backwards-compatible accessor)."""
        return self.memory.dram

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def simulate(
        self,
        workload: Workload,
        buffer_bytes: int,
        activation_buffer_fraction: float = 0.5,
        measured_stats: Optional["IndexComputeStats"] = None,
    ) -> SimulationResult:
        """Simulate a full inference pass of ``workload``.

        Args:
            workload: Model/task workload.
            buffer_bytes: On-chip buffer capacity in bytes.
            activation_buffer_fraction: Buffer fraction reserved for
                activations by the dataflow.
            measured_stats: Optional per-layer operation counts measured
                by the index-domain engine
                (:mod:`repro.transformer.index_execution`).  When given,
                ``measured_*`` entries land in the result detail next to
                the scheme's analytic counts, so reports can compare the
                assumed and the measured operation mix.  The analytic
                cycle/energy model itself is unchanged.
        """
        design = self.design
        buffer = SramBuffer(buffer_bytes, design.buffer_interface_bits)

        compute = self.datapath.layer_compute(workload, design)
        memory = self.memory.layer_memory(
            workload, design, buffer, activation_buffer_fraction
        )
        overlap = self.overlap.efficiency(
            workload, design, buffer_bytes, activation_buffer_fraction
        )
        layer_total_cycles = self.overlap.combine(compute.cycles, memory.cycles, overlap)

        layers = workload.num_layers
        energy = EnergyBreakdown(
            dram=memory.dram_energy_joules * layers,
            sram=memory.sram_energy_joules * layers,
            compute=compute.energy_joules * layers,
        )
        area = AreaBreakdown(compute=design.compute_area_mm2, buffer=buffer.area_mm2)

        detail = dict(compute.detail)
        detail.update(
            {
                "layer_traffic_bytes": memory.traffic_bytes,
                "weight_traffic_bytes": memory.traffic.weight_bytes * layers,
                "activation_traffic_bytes": memory.traffic.activation_bytes * layers,
                "activations_resident": float(memory.traffic.activations_resident),
                "overlap_efficiency": overlap,
            }
        )
        if measured_stats is not None:
            detail.update(
                {
                    "measured_gaussian_pairs": float(measured_stats.gaussian_pairs),
                    "measured_outlier_pairs": float(measured_stats.outlier_pairs),
                    "measured_outlier_pair_fraction": measured_stats.outlier_pair_fraction,
                    "measured_post_processing_macs": float(
                        measured_stats.post_processing_macs
                    ),
                }
            )

        return SimulationResult(
            design_name=design.name,
            workload_name=workload.name,
            buffer_bytes=buffer_bytes,
            compute_cycles=compute.cycles * layers,
            memory_cycles=memory.cycles * layers,
            total_cycles=layer_total_cycles * layers,
            traffic_bytes=memory.traffic_bytes * layers,
            energy=energy,
            area=area,
            detail=detail,
        )

    def sweep_buffers(
        self, workload: Workload, buffer_sizes: Tuple[int, ...]
    ) -> Dict[int, SimulationResult]:
        """Simulate the workload across a sweep of buffer capacities."""
        return {size: self.simulate(workload, size) for size in buffer_sizes}
