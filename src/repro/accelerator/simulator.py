"""End-to-end accelerator simulation.

For a given workload (model/task/sequence length), accelerator design and
on-chip buffer capacity, the simulator produces the quantities the paper's
evaluation section reports: compute cycles, memory transfer cycles, total
cycles after compute/memory overlap, off-chip traffic, an energy breakdown
(DRAM / on-chip SRAM / compute) and an area breakdown (compute array /
buffers).  All encoder layers of a model are identical, so the simulator
models one layer in detail and scales by the layer count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.accelerator.dataflow import LayerTraffic, activation_working_set_bits, plan_layer
from repro.accelerator.designs import AcceleratorDesign
from repro.accelerator.metrics import AreaBreakdown, EnergyBreakdown, SimulationResult
from repro.accelerator.mokey_accel import POST_PROCESSING_MACS_PER_OUTPUT
from repro.accelerator.workloads import Workload
from repro.memory.dram import DramModel
from repro.memory.sram import SramBuffer

__all__ = ["AcceleratorSimulator"]

# Register-file level operand reuse inside the PE array: each value fetched
# from the on-chip buffer is used this many times on average before being
# re-read (spatial reuse across the unit array).
_REGISTER_REUSE = 16.0


class AcceleratorSimulator:
    """Simulates a workload on an accelerator design.

    Args:
        design: The accelerator design point.
        dram: Main-memory model (DDR4-3200 dual channel by default).
    """

    def __init__(self, design: AcceleratorDesign, dram: Optional[DramModel] = None) -> None:
        self.design = design
        self.dram = dram or DramModel()

    # ------------------------------------------------------------------ #
    # Compute model
    # ------------------------------------------------------------------ #
    def _layer_compute(self, workload: Workload) -> Tuple[float, float, Dict[str, float]]:
        """Cycles and energy (joules) for the compute of one encoder layer."""
        design = self.design
        energies = design.energies
        macs = sum(g.macs for g in workload.layer_gemms)
        outputs = sum(g.output_values for g in workload.layer_gemms)
        weight_values = sum(g.weight_values for g in workload.layer_gemms if g.weight_static)
        input_values = sum(g.input_values for g in workload.layer_gemms)

        detail: Dict[str, float] = {"layer_macs": float(macs), "layer_outputs": float(outputs)}

        if design.datapath == "fp16":
            cycles = macs / design.peak_macs_per_cycle
            energy_pj = macs * energies.fp16_mac
            if design.decompression_lut:
                # Compressed values are expanded through LUTs as they enter
                # the datapath (memory-compression deployments).
                energy_pj += (weight_values + input_values) * energies.lut_lookup
                energy_pj += outputs * energies.quantizer_value
        elif design.datapath == "gobo":
            cycles = macs / design.peak_macs_per_cycle
            # FP16 MACs plus a dictionary lookup per weight value brought
            # into the PE array.
            energy_pj = macs * energies.fp16_mac + weight_values * energies.lut_lookup
        elif design.datapath == "mokey":
            outlier_pair_fraction = (
                design.weight_outlier_fraction
                + design.activation_outlier_fraction
                - design.weight_outlier_fraction * design.activation_outlier_fraction
            )
            gaussian_pairs = macs * (1.0 - outlier_pair_fraction)
            outlier_pairs = macs * outlier_pair_fraction
            opp_units = max(1, design.num_units // design.gpes_per_opp)

            gpe_cycles = gaussian_pairs / design.num_units
            # The shared OPP serialises outlier pairs and the per-output
            # post-processing drains.  At the paper's outlier rates (<5% of
            # pairs) one OPP per 8 GPEs keeps up with the GPE stream, so the
            # OPP only becomes the bottleneck when its total busy time
            # exceeds the GPE time; a 5% scheduling overhead covers bursts of
            # simultaneous outliers and drain/accumulate conflicts.
            outlier_cycles = outlier_pairs / opp_units
            post_cycles = outputs * POST_PROCESSING_MACS_PER_OUTPUT / opp_units
            cycles = 1.05 * max(gpe_cycles, outlier_cycles + post_cycles)

            energy_pj = (
                gaussian_pairs * energies.gaussian_pair
                + outlier_pairs * (energies.int16_mac + 2 * energies.lut_lookup)
                + outputs
                * (POST_PROCESSING_MACS_PER_OUTPUT * energies.int16_mac + energies.quantizer_value)
            )
            detail.update(
                {
                    "gaussian_pairs": gaussian_pairs,
                    "outlier_pairs": outlier_pairs,
                    "post_processing_cycles": post_cycles,
                }
            )
        else:  # pragma: no cover - guarded by AcceleratorDesign validation
            raise ValueError(f"unknown datapath {design.datapath}")

        return cycles, energy_pj * 1e-12, detail

    # ------------------------------------------------------------------ #
    # Memory model
    # ------------------------------------------------------------------ #
    def _layer_sram_energy(self, workload: Workload, buffer: SramBuffer) -> float:
        """On-chip buffer access energy of one encoder layer (joules)."""
        design = self.design
        read_bits = 0.0
        write_bits = 0.0
        for gemm in workload.layer_gemms:
            operand_bits = (
                gemm.input_values * design.activation_bits_onchip
                + gemm.weight_values
                * (design.weight_bits_onchip if gemm.weight_static else design.activation_bits_onchip)
            )
            # Every MAC needs two operands; the register/array-level reuse
            # factor limits how often the buffer is actually read.
            read_bits += (
                2.0 * gemm.macs
                * (design.activation_bits_onchip + design.weight_bits_onchip) / 2.0
                / _REGISTER_REUSE
            )
            read_bits += operand_bits  # initial fill of the buffer
            write_bits += gemm.output_values * design.activation_bits_onchip
        return buffer.read_energy_joules(read_bits) + buffer.write_energy_joules(write_bits)

    def _overlap_efficiency(self, workload: Workload, buffer_bytes: int) -> float:
        """How much of the shorter phase (compute or memory) can be hidden."""
        act_share_bits = buffer_bytes * 8 * 0.5
        working_set = activation_working_set_bits(workload, self.design.activation_bits_onchip)
        if working_set <= 0:
            return 0.98
        ratio = act_share_bits / working_set
        return float(min(0.98, max(0.25, 0.3 + 0.7 * ratio)))

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def simulate(
        self,
        workload: Workload,
        buffer_bytes: int,
        activation_buffer_fraction: float = 0.5,
    ) -> SimulationResult:
        """Simulate a full inference pass of ``workload``.

        Args:
            workload: Model/task workload.
            buffer_bytes: On-chip buffer capacity in bytes.
            activation_buffer_fraction: Buffer fraction reserved for
                activations by the dataflow.
        """
        design = self.design
        buffer = SramBuffer(buffer_bytes, design.buffer_interface_bits)

        traffic: LayerTraffic = plan_layer(
            workload, design, buffer_bytes, activation_buffer_fraction
        )
        layer_memory_bytes = traffic.total_bytes
        layer_memory_cycles = self.dram.transfer_cycles(layer_memory_bytes, design.clock_hz)
        layer_compute_cycles, layer_compute_energy, detail = self._layer_compute(workload)
        layer_sram_energy = self._layer_sram_energy(workload, buffer)
        layer_dram_energy = self.dram.transfer_energy_joules(layer_memory_bytes)

        overlap = self._overlap_efficiency(workload, buffer_bytes)
        layer_total_cycles = max(layer_compute_cycles, layer_memory_cycles) + (
            1.0 - overlap
        ) * min(layer_compute_cycles, layer_memory_cycles)

        layers = workload.num_layers
        energy = EnergyBreakdown(
            dram=layer_dram_energy * layers,
            sram=layer_sram_energy * layers,
            compute=layer_compute_energy * layers,
        )
        area = AreaBreakdown(compute=design.compute_area_mm2, buffer=buffer.area_mm2)

        detail.update(
            {
                "layer_traffic_bytes": layer_memory_bytes,
                "weight_traffic_bytes": traffic.weight_bytes * layers,
                "activation_traffic_bytes": traffic.activation_bytes * layers,
                "activations_resident": float(traffic.activations_resident),
                "overlap_efficiency": overlap,
            }
        )

        return SimulationResult(
            design_name=design.name,
            workload_name=workload.name,
            buffer_bytes=buffer_bytes,
            compute_cycles=layer_compute_cycles * layers,
            memory_cycles=layer_memory_cycles * layers,
            total_cycles=layer_total_cycles * layers,
            traffic_bytes=layer_memory_bytes * layers,
            energy=energy,
            area=area,
            detail=detail,
        )

    def sweep_buffers(
        self, workload: Workload, buffer_sizes: Tuple[int, ...]
    ) -> Dict[int, SimulationResult]:
        """Simulate the workload across a sweep of buffer capacities."""
        return {size: self.simulate(workload, size) for size in buffer_sizes}
