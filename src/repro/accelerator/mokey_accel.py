"""The Mokey accelerator (paper Section III-B, Fig. 6).

Tiles of 8 cascaded Gaussian PEs (GPEs) share an Outlier/Post-Processing
(OPP) unit.  GPEs process one Gaussian activation/weight pair per cycle by
adding the 3-bit indexes and updating the four counter register files;
outlier pairs are serialised through the shared OPP; after a tensor
finishes, the OPP drains the counters with a short weighted reduction and
the output quantizer converts each 16-bit output activation back to a
4-bit index.

Off-chip values use the 4-bit container of Fig. 5; on-chip values use the
5-bit single-stream encoding.
"""

from __future__ import annotations

from repro.accelerator.designs import AcceleratorDesign
from repro.accelerator.energy import DEFAULT_AREAS

__all__ = ["mokey_design", "MOKEY_OFFCHIP_BITS", "MOKEY_ONCHIP_BITS"]

# Effective off-chip bits per value: 4-bit indexes plus the outlier-pointer
# stream (6 bits per group of 64 plus 6 bits per outlier) amortise to ~4.3b
# for the paper's outlier rates.
MOKEY_OFFCHIP_BITS = 4.4
MOKEY_ONCHIP_BITS = 5.0
# Post-processing drain per output activation: 15 SoI bins + 8 SoA1 + 8 SoW1
# + 1 PoM1 reductions plus the final scale/add, serialised in the OPP.
POST_PROCESSING_MACS_PER_OUTPUT = 34


def mokey_design(num_units: int = 3072, gpes_per_opp: int = 8) -> AcceleratorDesign:
    """The Mokey accelerator configuration used throughout Section IV."""
    return AcceleratorDesign(
        name="mokey",
        datapath="mokey",
        num_units=num_units,
        unit_area_mm2=DEFAULT_AREAS.mokey_unit,
        weight_bits_offchip=MOKEY_OFFCHIP_BITS,
        activation_bits_offchip=MOKEY_OFFCHIP_BITS,
        weight_bits_onchip=MOKEY_ONCHIP_BITS,
        activation_bits_onchip=MOKEY_ONCHIP_BITS,
        buffer_interface_bits=5,
        gpes_per_opp=gpes_per_opp,
        weight_outlier_fraction=0.015,
        activation_outlier_fraction=0.045,
    )
