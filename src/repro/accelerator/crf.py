"""Counter Register File (CRF) behavioural model (paper Fig. 6, right).

Each Gaussian PE contains four individually sized CRFs that accumulate the
SoI (15 x 8b), SoA1 (8 x 8b), SoW1 (8 x 8b) and PoM1 (1 x 8b) summations.
A CRF line can be incremented or decremented each cycle (selected by the
product sign) and is scanned serially during post-processing.

The model is bit-accurate with respect to width: counters saturate at the
signed range of their width, and the ``drained`` flag mirrors the
post-processing scan.  The accelerator-level simulator uses statistical
counts instead, but the tests use this model to check that 8-bit counters
are wide enough for the tile sizes the design processes between drains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

__all__ = ["CounterRegisterFile", "GpeCounterSet"]


@dataclass
class CounterRegisterFile:
    """A small file of up/down counters.

    Attributes:
        num_entries: Number of counter lines.
        width_bits: Width of each counter (8 in the paper).
    """

    num_entries: int
    width_bits: int = 8
    counters: np.ndarray = field(init=False)
    saturations: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.counters = np.zeros(self.num_entries, dtype=np.int64)

    @property
    def max_value(self) -> int:
        return 2 ** (self.width_bits - 1) - 1

    @property
    def min_value(self) -> int:
        return -(2 ** (self.width_bits - 1))

    def update(self, address: int, up: bool) -> None:
        """Increment (up) or decrement one counter line, with saturation."""
        if not 0 <= address < self.num_entries:
            raise IndexError(f"CRF address {address} out of range")
        delta = 1 if up else -1
        value = int(self.counters[address]) + delta
        if value > self.max_value or value < self.min_value:
            self.saturations += 1
            value = max(self.min_value, min(self.max_value, value))
        self.counters[address] = value

    def drain(self) -> np.ndarray:
        """Read out all counters and reset them (post-processing scan)."""
        values = self.counters.copy()
        self.counters[:] = 0
        return values


@dataclass
class GpeCounterSet:
    """The four CRFs of one Gaussian PE."""

    num_half_entries: int = 8
    width_bits: int = 8
    soi: CounterRegisterFile = field(init=False)
    soa1: CounterRegisterFile = field(init=False)
    sow1: CounterRegisterFile = field(init=False)
    pom1: CounterRegisterFile = field(init=False)

    def __post_init__(self) -> None:
        self.soi = CounterRegisterFile(2 * self.num_half_entries - 1, self.width_bits)
        self.soa1 = CounterRegisterFile(self.num_half_entries, self.width_bits)
        self.sow1 = CounterRegisterFile(self.num_half_entries, self.width_bits)
        self.pom1 = CounterRegisterFile(1, self.width_bits)

    def process_pair(self, act_index: int, act_sign: int, weight_index: int, weight_sign: int) -> None:
        """Process one Gaussian activation/weight pair (one GPE cycle)."""
        up = (act_sign >= 0) == (weight_sign >= 0)
        self.soi.update(act_index + weight_index, up)
        self.soa1.update(act_index, up)
        self.sow1.update(weight_index, up)
        self.pom1.update(0, up)

    @property
    def total_saturations(self) -> int:
        return (
            self.soi.saturations
            + self.soa1.saturations
            + self.sow1.saturations
            + self.pom1.saturations
        )
