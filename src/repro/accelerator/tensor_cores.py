"""The FP16 Tensor-Cores baseline accelerator (paper Section IV-B).

A spatial accelerator with 2048 FP16 multiply-accumulate units, modelled
after the Tensor-Cores microbenchmarking studies the paper cites.  Weights
and activations are stored as FP16 both off-chip and on-chip.
"""

from __future__ import annotations

from repro.accelerator.designs import AcceleratorDesign
from repro.accelerator.energy import DEFAULT_AREAS

__all__ = ["tensor_cores_design"]


def tensor_cores_design(num_units: int = 2048) -> AcceleratorDesign:
    """The baseline FP16 Tensor-Cores-style accelerator."""
    return AcceleratorDesign(
        name="tensor-cores",
        datapath="fp16",
        num_units=num_units,
        unit_area_mm2=DEFAULT_AREAS.tensor_core_unit,
        weight_bits_offchip=16.0,
        activation_bits_offchip=16.0,
        weight_bits_onchip=16.0,
        activation_bits_onchip=16.0,
        buffer_interface_bits=16,
        weight_outlier_fraction=0.0,
        activation_outlier_fraction=0.0,
    )
