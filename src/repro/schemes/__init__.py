"""Pluggable quantization schemes: numerics + accelerator cost models.

Every numerics method the evaluation sweeps — Mokey, the FP16 baseline,
GOBO, the memory-compression-only deployments, and the Table IV baselines
— is a :class:`~repro.schemes.base.QuantizationScheme` registered by name.
The accelerator simulator dispatches to the scheme object through
:func:`~repro.schemes.base.get_scheme`; adding a method to the evaluation
is a registration, not a simulator edit.

Usage::

    from repro.schemes import get_scheme, available_schemes

    scheme = get_scheme("mokey")
    phase = scheme.layer_compute(workload, design)   # cycles + joules
    recon = scheme.quantize_dequantize(tensor)       # numerics round-trip
"""

from repro.schemes.base import (
    ComputePhase,
    GemmAggregates,
    QuantizationScheme,
    SchemeStorage,
    available_schemes,
    get_scheme,
    register_scheme,
    scheme,
)
from repro.schemes.fp16 import Fp16Scheme, MokeyFullCompressionScheme, MokeyOffChipCompressionScheme
from repro.schemes.gobo import GoboScheme
from repro.schemes.mokey import MokeyScheme
from repro.schemes.baseline_adapters import BASELINE_SCHEME_NAMES, BaselineScheme

__all__ = [
    "ComputePhase",
    "GemmAggregates",
    "QuantizationScheme",
    "SchemeStorage",
    "available_schemes",
    "get_scheme",
    "register_scheme",
    "scheme",
    "Fp16Scheme",
    "MokeyOffChipCompressionScheme",
    "MokeyFullCompressionScheme",
    "GoboScheme",
    "MokeyScheme",
    "BaselineScheme",
    "BASELINE_SCHEME_NAMES",
]
