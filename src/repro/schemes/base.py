"""Quantization-scheme interface and registry.

A :class:`QuantizationScheme` unifies the two halves of a numerics method
that the rest of the codebase used to keep apart:

* **numerics** — how tensor values are quantized/dequantized and how many
  bits a stored value nominally occupies (the Table IV axis), and
* **accelerator cost modelling** — the compute cycles and energy of one
  encoder layer on a processing-element array running the scheme, the
  on-chip/off-chip storage widths the dataflow should assume, and any
  lookup-table/outlier side costs (the Figures 9-15 axis).

Schemes are looked up by name through a module-level registry, so adding a
new method to the simulator is a registration (:func:`register_scheme` or
the :func:`scheme` decorator), not an edit of the simulator core:

    >>> from repro.schemes import QuantizationScheme, register_scheme
    >>> class Int4Scheme(QuantizationScheme):
    ...     name = "int4"
    ...     def layer_compute(self, workload, design):
    ...         ...
    >>> register_scheme(Int4Scheme())

The :class:`~repro.accelerator.designs.AcceleratorDesign` ``datapath``
field is a registry key; the simulator dispatches to the scheme object and
never branches on the name itself.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (designs -> schemes)
    from repro.accelerator.designs import AcceleratorDesign
    from repro.accelerator.workloads import Workload

__all__ = [
    "SchemeStorage",
    "ComputePhase",
    "GemmAggregates",
    "QuantizationScheme",
    "register_scheme",
    "scheme",
    "get_scheme",
    "available_schemes",
]


@dataclass(frozen=True)
class SchemeStorage:
    """Default per-value storage widths of a scheme.

    Design factories use these to populate an
    :class:`~repro.accelerator.designs.AcceleratorDesign`; a design may
    still override them (e.g. the memory-compression deployments).

    Attributes:
        weight_bits_offchip: Bits per weight value in DRAM.
        activation_bits_offchip: Bits per activation value in DRAM.
        weight_bits_onchip: Bits per weight value in the on-chip buffer.
        activation_bits_onchip: Bits per activation value on-chip.
        buffer_interface_bits: Value width at the buffer interface.
        decompression_lut: Whether values pass through a lookup table when
            read into the datapath.
        weight_outlier_fraction: Expected fraction of outlier-encoded
            weights under this scheme's numerics.
        activation_outlier_fraction: Same for activations.
    """

    weight_bits_offchip: float = 16.0
    activation_bits_offchip: float = 16.0
    weight_bits_onchip: float = 16.0
    activation_bits_onchip: float = 16.0
    buffer_interface_bits: int = 16
    decompression_lut: bool = False
    weight_outlier_fraction: float = 0.0
    activation_outlier_fraction: float = 0.0


@dataclass
class ComputePhase:
    """Outcome of the compute stage for one encoder layer.

    Attributes:
        cycles: Cycles the PE array is busy on one layer.
        energy_joules: Compute energy of one layer in joules.
        detail: Free-form per-scheme extras (pair counts, drain cycles, ...).
    """

    cycles: float
    energy_joules: float
    detail: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class GemmAggregates:
    """Per-layer operand/operation counts shared by every scheme's cost model."""

    macs: float
    outputs: float
    weight_values: float
    input_values: float

    @classmethod
    def of_layer(cls, workload: "Workload") -> "GemmAggregates":
        gemms = workload.layer_gemms
        return cls(
            macs=float(sum(g.macs for g in gemms)),
            outputs=float(sum(g.output_values for g in gemms)),
            weight_values=float(sum(g.weight_values for g in gemms if g.weight_static)),
            input_values=float(sum(g.input_values for g in gemms)),
        )


class QuantizationScheme(abc.ABC):
    """A numerics method plus its accelerator cost model.

    Subclasses must set :attr:`name` and implement :meth:`layer_compute`;
    the numerics hooks default to identity/FP16 so compute-only schemes
    stay small.
    """

    #: Registry key; also the valid values of ``AcceleratorDesign.datapath``.
    name: str = ""
    #: Nominal bits per stored weight value (reporting only).
    weight_bits: float = 16.0
    #: Nominal bits per stored activation value (reporting only).
    activation_bits: float = 16.0

    # ------------------------------------------------------------------ #
    # Numerics
    # ------------------------------------------------------------------ #
    def quantize_dequantize(self, values: np.ndarray, name: str = "tensor") -> np.ndarray:
        """Round-trip a tensor through the scheme's numerics.

        The default is the identity (an unquantized FP16-style scheme).
        """
        return np.asarray(values)

    # ------------------------------------------------------------------ #
    # Storage model
    # ------------------------------------------------------------------ #
    def storage(self) -> SchemeStorage:
        """Default storage widths a design built for this scheme should use."""
        return SchemeStorage()

    # ------------------------------------------------------------------ #
    # Compute model
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def layer_compute(self, workload: "Workload", design: "AcceleratorDesign") -> ComputePhase:
        """Cycles and energy for the compute of one encoder layer."""

    def describe(self) -> str:
        """One-line human description (used by ``repro registry list schemes``)."""
        return (
            f"{type(self).__name__}: w{self.weight_bits:g}b/a{self.activation_bits:g}b "
            f"numerics + accelerator cost model"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
_REGISTRY: Dict[str, QuantizationScheme] = {}


def register_scheme(instance: QuantizationScheme, replace: bool = False) -> QuantizationScheme:
    """Register a scheme instance under its :attr:`~QuantizationScheme.name`.

    Args:
        instance: The scheme to register.
        replace: Allow overwriting an existing registration.
    """
    if not instance.name:
        raise ValueError("scheme must define a non-empty name")
    if instance.name in _REGISTRY and not replace:
        raise ValueError(f"scheme {instance.name!r} is already registered")
    _REGISTRY[instance.name] = instance
    return instance


def scheme(cls):
    """Class decorator: instantiate with no arguments and register."""
    register_scheme(cls())
    return cls


def get_scheme(name: str) -> QuantizationScheme:
    """Look up a registered scheme; raises ``ValueError`` for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        import difflib

        matches = difflib.get_close_matches(str(name), list(_REGISTRY), n=1, cutoff=0.6)
        hint = f" — did you mean {matches[0]!r}?" if matches else ""
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise ValueError(
            f"unknown datapath {name!r}{hint} (registered schemes: {known})"
        ) from None


def available_schemes() -> Tuple[str, ...]:
    """Names of all registered schemes, sorted."""
    return tuple(sorted(_REGISTRY))
