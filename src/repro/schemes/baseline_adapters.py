"""Scheme adapters for the Table IV baseline quantizers.

Each baseline in :mod:`repro.baselines` registers a scheme so the
campaign engine can sweep it like any other method: tensor-level numerics
are delegated to the baseline's quantization function and the cost model
is a uniform fixed-point/FP16 MAC array parameterised by the method's bit
widths (integer-compute methods scale the 16-bit MAC energy by their
operand width; dictionary-coded weights add a lookup per weight; methods
that quantize activations pay one re-quantization per output).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.schemes.base import (
    ComputePhase,
    GemmAggregates,
    QuantizationScheme,
    SchemeStorage,
    register_scheme,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.accelerator.designs import AcceleratorDesign
    from repro.accelerator.workloads import Workload

__all__ = ["BaselineScheme", "BASELINE_SCHEME_NAMES"]


class BaselineScheme(QuantizationScheme):
    """A registered scheme backed by a baseline's tensor-level numerics.

    Args:
        name: Registry key.
        weight_bits: Bits per stored weight value.
        activation_bits: Bits per stored activation value.
        quantize_fn: ``values -> reconstruction`` tensor round-trip.
        integer_compute: Whether MACs run in the fixed-point domain (energy
            scales from the 16-bit MAC by operand width) or stay FP16.
        weight_lut: Whether weights are dictionary-coded and need a lookup
            per value entering the PE array.
    """

    def __init__(
        self,
        name: str,
        weight_bits: float,
        activation_bits: float,
        quantize_fn: Callable[[np.ndarray], np.ndarray],
        integer_compute: bool = False,
        weight_lut: bool = False,
    ) -> None:
        self.name = name
        self.weight_bits = float(weight_bits)
        self.activation_bits = float(activation_bits)
        self._quantize_fn = quantize_fn
        self.integer_compute = integer_compute
        self.weight_lut = weight_lut

    def quantize_dequantize(self, values: np.ndarray, name: str = "tensor") -> np.ndarray:
        return self._quantize_fn(np.asarray(values))

    def storage(self) -> SchemeStorage:
        return SchemeStorage(
            weight_bits_offchip=self.weight_bits,
            activation_bits_offchip=min(self.activation_bits, 16.0),
            weight_bits_onchip=self.weight_bits,
            activation_bits_onchip=min(self.activation_bits, 16.0),
            buffer_interface_bits=int(min(self.activation_bits, 16.0)),
        )

    def layer_compute(self, workload: "Workload", design: "AcceleratorDesign") -> ComputePhase:
        agg = GemmAggregates.of_layer(workload)
        energies = design.energies
        cycles = agg.macs / design.peak_macs_per_cycle
        if self.integer_compute:
            operand_bits = max(self.weight_bits, min(self.activation_bits, 16.0))
            mac_energy = energies.int16_mac * operand_bits / 16.0
        else:
            mac_energy = energies.fp16_mac
        energy_pj = agg.macs * mac_energy
        if self.weight_lut:
            energy_pj += agg.weight_values * energies.lut_lookup
        if self.activation_bits < 16.0:
            energy_pj += agg.outputs * energies.quantizer_value
        return ComputePhase(
            cycles=cycles,
            energy_joules=energy_pj * 1e-12,
            detail={"layer_macs": agg.macs, "layer_outputs": agg.outputs},
        )


def _q8bert_tensor(values: np.ndarray) -> np.ndarray:
    from repro.baselines.base import uniform_symmetric_quantize

    reconstruction, _ = uniform_symmetric_quantize(values, 8)
    return reconstruction


def _qbert_tensor(values: np.ndarray) -> np.ndarray:
    from repro.baselines.qbert import groupwise_quantize

    return groupwise_quantize(values, 4)


def _ternary_tensor(values: np.ndarray) -> np.ndarray:
    from repro.baselines.ternarybert import ternarize

    reconstruction, _, _ = ternarize(values)
    return reconstruction


BASELINE_SCHEME_NAMES = ("q8bert", "ibert", "qbert", "ternarybert")

register_scheme(BaselineScheme("q8bert", 8, 8, _q8bert_tensor))
register_scheme(BaselineScheme("ibert", 8, 8, _q8bert_tensor, integer_compute=True))
register_scheme(BaselineScheme("qbert", 4, 8, _qbert_tensor, weight_lut=True))
register_scheme(BaselineScheme("ternarybert", 2, 8, _ternary_tensor, integer_compute=True))
