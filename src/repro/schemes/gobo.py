"""GOBO scheme: 3-bit dictionary weights, FP16 activations and compute.

Numerics come from the GOBO baseline quantizer (per-tensor k-means
centroids with FP32 outliers); the cost model is an FP16 MAC array with a
dictionary lookup per weight value entering the PE array.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.schemes.base import ComputePhase, GemmAggregates, QuantizationScheme, SchemeStorage, scheme

if TYPE_CHECKING:  # pragma: no cover
    from repro.accelerator.designs import AcceleratorDesign
    from repro.accelerator.workloads import Workload

__all__ = ["GoboScheme"]


@scheme
class GoboScheme(QuantizationScheme):
    """Weights-only dictionary quantization on an FP16 datapath with weight LUTs."""

    name = "gobo"
    weight_bits = 3.0
    activation_bits = 16.0

    def quantize_dequantize(self, values: np.ndarray, name: str = "tensor") -> np.ndarray:
        from repro.baselines.gobo import gobo_quantize_tensor

        reconstruction, _, _ = gobo_quantize_tensor(values)
        return reconstruction

    def storage(self) -> SchemeStorage:
        from repro.accelerator.gobo_accel import GOBO_WEIGHT_BITS

        return SchemeStorage(
            weight_bits_offchip=GOBO_WEIGHT_BITS,
            activation_bits_offchip=16.0,
            weight_bits_onchip=GOBO_WEIGHT_BITS,
            activation_bits_onchip=16.0,
            buffer_interface_bits=16,
            decompression_lut=True,
            weight_outlier_fraction=0.001,
            activation_outlier_fraction=0.0,
        )

    def layer_compute(self, workload: "Workload", design: "AcceleratorDesign") -> ComputePhase:
        agg = GemmAggregates.of_layer(workload)
        energies = design.energies
        cycles = agg.macs / design.peak_macs_per_cycle
        # FP16 MACs plus a dictionary lookup per weight value brought into
        # the PE array.
        energy_pj = agg.macs * energies.fp16_mac + agg.weight_values * energies.lut_lookup
        return ComputePhase(
            cycles=cycles,
            energy_joules=energy_pj * 1e-12,
            detail={"layer_macs": agg.macs, "layer_outputs": agg.outputs},
        )
