"""FP16 Tensor-Cores scheme and its memory-compression variants.

``fp16`` models the plain Tensor-Cores baseline: one FP16 MAC per pair,
no storage compression.  ``mokey-oc`` and ``mokey-oc+on`` are the Section
IV-D deployments where the compute units stay FP16 but Mokey compresses
storage off-chip only, or off-chip and on-chip; both pay the LUT expansion
per operand entering the datapath and a re-quantization per output.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.schemes.base import ComputePhase, GemmAggregates, QuantizationScheme, SchemeStorage, scheme

if TYPE_CHECKING:  # pragma: no cover
    from repro.accelerator.designs import AcceleratorDesign
    from repro.accelerator.workloads import Workload

__all__ = ["Fp16Scheme", "MokeyOffChipCompressionScheme", "MokeyFullCompressionScheme"]


@scheme
class Fp16Scheme(QuantizationScheme):
    """Uncompressed FP16 numerics on an FP16 MAC array."""

    name = "fp16"
    weight_bits = 16.0
    activation_bits = 16.0

    def layer_compute(self, workload: "Workload", design: "AcceleratorDesign") -> ComputePhase:
        agg = GemmAggregates.of_layer(workload)
        energies = design.energies
        cycles = agg.macs / design.peak_macs_per_cycle
        energy_pj = agg.macs * energies.fp16_mac
        if design.decompression_lut:
            # Compressed values are expanded through LUTs as they enter the
            # datapath (memory-compression deployments), and outputs are
            # re-quantized on the way back out.
            energy_pj += (agg.weight_values + agg.input_values) * energies.lut_lookup
            energy_pj += agg.outputs * energies.quantizer_value
        return ComputePhase(
            cycles=cycles,
            energy_joules=energy_pj * 1e-12,
            detail={"layer_macs": agg.macs, "layer_outputs": agg.outputs},
        )


@scheme
class MokeyOffChipCompressionScheme(Fp16Scheme):
    """FP16 compute with Mokey compressing DRAM storage only (Section IV-D "OC")."""

    name = "mokey-oc"
    weight_bits = 4.4
    activation_bits = 4.4

    def storage(self) -> SchemeStorage:
        from repro.accelerator.mokey_accel import MOKEY_OFFCHIP_BITS

        return SchemeStorage(
            weight_bits_offchip=MOKEY_OFFCHIP_BITS,
            activation_bits_offchip=MOKEY_OFFCHIP_BITS,
            weight_bits_onchip=16.0,
            activation_bits_onchip=16.0,
            buffer_interface_bits=16,
            decompression_lut=True,
        )


@scheme
class MokeyFullCompressionScheme(Fp16Scheme):
    """FP16 compute with Mokey compressing DRAM and the on-chip buffer ("OC+ON")."""

    name = "mokey-oc+on"
    weight_bits = 4.4
    activation_bits = 4.4

    def storage(self) -> SchemeStorage:
        from repro.accelerator.mokey_accel import MOKEY_OFFCHIP_BITS, MOKEY_ONCHIP_BITS

        return SchemeStorage(
            weight_bits_offchip=MOKEY_OFFCHIP_BITS,
            activation_bits_offchip=MOKEY_OFFCHIP_BITS,
            weight_bits_onchip=MOKEY_ONCHIP_BITS,
            activation_bits_onchip=MOKEY_ONCHIP_BITS,
            buffer_interface_bits=5,
            decompression_lut=True,
        )
