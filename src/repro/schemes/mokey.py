"""Mokey scheme: 4-bit Golden-Dictionary indexes on the GPE/OPP array.

Numerics come from :class:`~repro.core.quantizer.MokeyQuantizer` (Golden
Dictionary fit + outlier dictionary); the cost model is the paper's
Section III-B array of cascaded Gaussian PEs sharing outlier/post-
processing units.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.schemes.base import ComputePhase, GemmAggregates, QuantizationScheme, SchemeStorage, scheme

if TYPE_CHECKING:  # pragma: no cover
    from repro.accelerator.designs import AcceleratorDesign
    from repro.accelerator.workloads import Workload
    from repro.core.quantizer import MokeyQuantizer

__all__ = ["MokeyScheme"]


@scheme
class MokeyScheme(QuantizationScheme):
    """4-bit dictionary numerics on the Mokey GPE/OPP datapath."""

    name = "mokey"
    weight_bits = 4.0
    activation_bits = 4.0

    def __init__(self) -> None:
        self._quantizer: Optional["MokeyQuantizer"] = None

    def _get_quantizer(self) -> "MokeyQuantizer":
        # Generating the Golden Dictionary is expensive; defer until the
        # numerics are actually exercised and share one instance after.
        if self._quantizer is None:
            from repro.core.quantizer import MokeyQuantizer

            self._quantizer = MokeyQuantizer()
        return self._quantizer

    def quantize_dequantize(self, values: np.ndarray, name: str = "tensor") -> np.ndarray:
        return self._get_quantizer().quantize_dequantize(values, name=name)

    def storage(self) -> SchemeStorage:
        from repro.accelerator.mokey_accel import MOKEY_OFFCHIP_BITS, MOKEY_ONCHIP_BITS

        return SchemeStorage(
            weight_bits_offchip=MOKEY_OFFCHIP_BITS,
            activation_bits_offchip=MOKEY_OFFCHIP_BITS,
            weight_bits_onchip=MOKEY_ONCHIP_BITS,
            activation_bits_onchip=MOKEY_ONCHIP_BITS,
            buffer_interface_bits=5,
            weight_outlier_fraction=0.015,
            activation_outlier_fraction=0.045,
        )

    def layer_compute(self, workload: "Workload", design: "AcceleratorDesign") -> ComputePhase:
        from repro.accelerator.mokey_accel import POST_PROCESSING_MACS_PER_OUTPUT

        agg = GemmAggregates.of_layer(workload)
        energies = design.energies
        outlier_pair_fraction = (
            design.weight_outlier_fraction
            + design.activation_outlier_fraction
            - design.weight_outlier_fraction * design.activation_outlier_fraction
        )
        gaussian_pairs = agg.macs * (1.0 - outlier_pair_fraction)
        outlier_pairs = agg.macs * outlier_pair_fraction
        opp_units = max(1, design.num_units // design.gpes_per_opp)

        gpe_cycles = gaussian_pairs / design.num_units
        # The shared OPP serialises outlier pairs and the per-output
        # post-processing drains.  At the paper's outlier rates (<5% of
        # pairs) one OPP per 8 GPEs keeps up with the GPE stream, so the
        # OPP only becomes the bottleneck when its total busy time
        # exceeds the GPE time; a 5% scheduling overhead covers bursts of
        # simultaneous outliers and drain/accumulate conflicts.
        outlier_cycles = outlier_pairs / opp_units
        post_cycles = agg.outputs * POST_PROCESSING_MACS_PER_OUTPUT / opp_units
        cycles = 1.05 * max(gpe_cycles, outlier_cycles + post_cycles)

        energy_pj = (
            gaussian_pairs * energies.gaussian_pair
            + outlier_pairs * (energies.int16_mac + 2 * energies.lut_lookup)
            + agg.outputs
            * (POST_PROCESSING_MACS_PER_OUTPUT * energies.int16_mac + energies.quantizer_value)
        )
        return ComputePhase(
            cycles=cycles,
            energy_joules=energy_pj * 1e-12,
            detail={
                "layer_macs": agg.macs,
                "layer_outputs": agg.outputs,
                "gaussian_pairs": gaussian_pairs,
                "outlier_pairs": outlier_pairs,
                "post_processing_cycles": post_cycles,
            },
        )
