"""Pytest bootstrap: make ``src/`` importable without an installed package.

Offline environments may lack the ``wheel`` package needed for editable
installs; adding ``src`` to ``sys.path`` keeps the test and benchmark
suites runnable either way.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
